"""Command-line entry point: ``python -m repro``.

Subcommands (all scheme names resolve through the ``repro.api`` registry):

* ``list-schemes`` — print every registered scheme spec (parameters,
  defaults, stretch bound, accepted graph classes),
* ``table1`` — regenerate the paper's Table 1 on a chosen topology,
  sharing one substrate (metric, ports, balls) across all five schemes,
* ``route`` — build one scheme and trace one message (or serve one from
  a shard directory with ``--shards``, loading only the visited shards),
* ``validate`` — run the structural validation checklist on a scheme,
* ``save`` — build a scheme and persist its routing state to disk,
* ``shard`` — build a scheme and compile it into per-vertex binary
  shards (the deployment layout: each node gets only its own table);
  ``--pack`` writes mmap-able packed group files instead of one file
  per vertex (same payloads, ``O(n / group_size)`` files — the
  ``n >= 10^5`` shape),
* ``load`` — restore a saved scheme (no preprocessing) and serve it;
  accepts both the JSON blob and a shard directory,
* ``check`` — run the static invariant linter (``repro.analysis``) over
  the source tree; ``--json`` emits machine-readable findings,
* ``cluster`` — multi-process serving over a packed shard directory
  (``repro.cluster``): ``cluster serve`` starts a worker fleet and
  writes a ``cluster.json`` reconnect spec, ``cluster route`` routes
  through a fleet (ephemeral ``--shards``/``--workers`` or a running
  one via ``--cluster``) printing the same hop lines as ``route``,
  ``cluster status`` prints fleet health and aggregated serve counters.

Build-style subcommands accept ``--preset`` to apply the scheme's
workload-aware parameter preset for a graph family (see
``SchemeSpec.presets``); by default the preset matching ``--family`` is
applied automatically when the scheme defines one.
"""

from __future__ import annotations

import argparse
import sys

from .api import (
    SchemeParamError,
    SubstrateCache,
    TABLE1_SCHEMES,
    all_specs,
    build,
    get_spec,
    load as load_session,
    scheme_names,
)
from .eval.reporting import table
from .eval.workloads import FAMILIES, family_graph, sample_pairs


def _build_graph(family: str, n: int, seed: int, weighted: bool):
    try:
        return family_graph(family, n, seed, weighted=weighted)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _resolve_preset(spec, family: str, preset_arg: str):
    """The preset a build-style subcommand should apply.

    ``auto`` (the default) picks the preset named after the graph family
    when the scheme defines one — the workload-aware default; ``none``
    disables presets; anything else is passed through verbatim (unknown
    names fail with the spec's preset list).
    """
    if preset_arg == "none":
        return None
    if preset_arg == "auto":
        return family if family in spec.presets else None
    return preset_arg


def _build_session(
    name: str, n: int, family: str, seed: int, preset_arg: str = "auto"
):
    """Build one scheme on its preferred variant of the topology."""
    spec = get_spec(name)
    weighted = spec.prefers_weighted and family != "geo"
    g = _build_graph(family, n, seed, weighted)
    preset = _resolve_preset(spec, family, preset_arg)
    try:
        spec.check_graph(g)
        session = build(name, g, seed=seed, preset=preset)
    except SchemeParamError as exc:
        raise SystemExit(str(exc)) from None
    if preset is not None and spec.preset_params(preset):
        print(
            f"[preset {preset}: "
            + ", ".join(
                f"{k}={v}" for k, v in spec.preset_params(preset).items()
            )
            + "]"
        )
    return session


def cmd_list_schemes(args) -> int:
    rows = []
    for spec in all_specs():
        params = ", ".join(
            f"{p.name}={p.default}" for p in spec.params
        )
        graphs = "any" if spec.weighted_capable else "unweighted"
        rows.append([spec.name, spec.stretch, graphs, params])
    print(f"{len(rows)} registered schemes:")
    print(table(["name", "stretch", "graphs", "parameters"], rows))
    print("\ndetails:")
    for spec in all_specs():
        print(f"  {spec.name:<12} {spec.summary}")
    return 0


def _wrap_pair(source: int, target: int, n: int) -> tuple:
    return source % n, target % n


def _hop_line(s: int, t: int, result) -> str:
    """The canonical `route s -> t: ...` line (built and shard-served
    routes must print it byte-identically — the CLI parity tests diff
    them)."""
    return f"route {s} -> {t}: {' -> '.join(map(str, result.path))}"


def _print_route(session, source: int, target: int) -> None:
    """Trace one message and print the path + measured stretch lines."""
    s, t = _wrap_pair(source, target, session.graph.n)
    result = session.route(s, t)
    print(_hop_line(s, t, result))
    d = session.metric.d(s, t)
    if d > 0:
        print(
            f"length {result.length:.4f} vs optimal {d:.4f} "
            f"(stretch {result.length / d:.4f})"
        )


def cmd_route(args) -> int:
    if args.max_resident is not None and not args.shards:
        raise SystemExit(
            "--max-resident bounds the shard LRU of a served directory; "
            "it requires --shards"
        )
    if args.shards:
        from .api import RoutingSession

        _reject_build_flags_with_shards(args)
        try:
            session = RoutingSession.from_shards(
                args.shards, max_resident=args.max_resident
            )
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"cannot serve from {args.shards!r}: {exc}"
            ) from None
        if session.serve_stats() is None:
            raise SystemExit(
                f"{args.shards!r} is not a shard directory; "
                f"use `load` for JSON session blobs"
            )
        print(session.describe())
        s, t = _wrap_pair(args.source, args.target, session.scheme.n)
        result = session.route(s, t)
        # Snapshot the counters before anything global (e.g. the exact
        # metric) could touch more shards: the whole point is that one
        # route reads only the visited vertices' tables.
        stats = session.serve_stats()
        print(_hop_line(s, t, result))
        print(f"length {result.length:.4f} in {result.hops} hops")
        print(
            f"served from {stats['loads']} shard loads "
            f"({stats['bytes_read']} bytes; {stats['n']} shards on disk, "
            f"{stats['layout']} layout)"
        )
        if stats.get("headers_encoded"):
            print(
                f"wire headers: {stats['headers_encoded']} encoded, "
                f"{stats['header_bytes']} bytes total "
                f"(max {stats['max_header_bytes']})"
            )
        health = session.health()
        if health is not None and health["status"] != "ok":
            print(
                f"health: {health['status']} "
                f"(retries {health['retries']}, checksum failures "
                f"{health['checksum_failures']}, failovers "
                f"{health['failovers']}, repairs {health['repairs']})"
            )
        return 0
    session = _build_session(
        args.scheme, args.n, args.family, args.seed, args.preset
    )
    print(f"{session.name} on {session.graph}")
    _print_route(session, args.source, args.target)
    return 0


def cmd_validate(args) -> int:
    session = _build_session(
        args.scheme, args.n, args.family, args.seed, args.preset
    )
    result = session.validate(sample=args.pairs, seed=args.seed)
    print(f"{session.name} on {session.graph}")
    print(
        f"checked {result.checked_pairs} pairs: max stretch "
        f"{result.max_stretch:.4f}, max header {result.max_header_words} "
        f"words, max label {result.max_label_words} words"
    )
    if result.ok:
        print("validation: OK")
        return 0
    print("validation: FAILED")
    for problem in result.problems[:20]:
        print(f"  - {problem}")
    return 1


def cmd_table1(args) -> int:
    rows = []
    cache = SubstrateCache()
    graphs = {}  # one graph per (weighted?) variant, substrates shared
    substrate_seconds = 0.0
    scheme_seconds = 0.0
    presets_applied = set()  # presets that changed at least one param
    if args.preset not in ("auto", "none"):
        # Fail on a typo'd preset before any scheme is built, not after
        # the whole table has been computed at defaults.
        known = sorted(
            {p for s in map(get_spec, TABLE1_SCHEMES) for p in s.presets}
        )
        if args.preset not in known:
            raise SystemExit(
                f"unknown preset {args.preset!r}: no Table-1 scheme "
                f"defines it (known presets: {', '.join(known)})"
            )
    for name in TABLE1_SCHEMES:
        spec = get_spec(name)
        weighted = spec.prefers_weighted and args.family != "geo"
        if not spec.weighted_capable:
            if args.family == "geo":
                continue  # geometric graphs are weighted
            weighted = False
        if weighted not in graphs:
            graphs[weighted] = _build_graph(
                args.family, args.n, args.seed, weighted
            )
        g = graphs[weighted]
        if not spec.weighted_capable and not g.is_unweighted():
            continue
        preset = _resolve_preset(spec, args.family, args.preset)
        if preset is not None and preset not in spec.presets:
            preset = None  # baselines without presets build at defaults
        if preset is not None and spec.preset_params(preset):
            presets_applied.add(preset)
        session = build(name, g, cache=cache, seed=args.seed, preset=preset)
        substrate_seconds += session.substrate_seconds
        scheme_seconds += session.build_seconds
        pairs = sample_pairs(g.n, args.pairs, seed=args.seed + 5)
        rep = session.measure(pairs)
        stats = session.stats()
        rows.append(
            f"{session.name:<26} max={rep.max_stretch:<7.3f} "
            f"avg={rep.avg_stretch:<7.3f} tbl-avg={stats.avg_table_words:<9.1f}"
        )
    note = (
        f" [preset {', '.join(sorted(presets_applied))}]"
        if presets_applied else ""
    )
    print(f"Table 1 on family={args.family}, n={args.n}:{note}")
    for row in rows:
        print("  " + row)
    print(
        f"  [substrate {substrate_seconds:.2f}s shared across "
        f"{len(rows)} schemes; scheme builds {scheme_seconds:.2f}s]"
    )
    return 0


def cmd_save(args) -> int:
    session = _build_session(
        args.scheme, args.n, args.family, args.seed, args.preset
    )
    path = session.save(args.out)
    stats = session.stats()
    print(f"{session.name} on {session.graph}")
    print(
        f"saved to {path} ({stats.total_table_words} table words, "
        f"built in {session.build_seconds:.2f}s)"
    )
    return 0


def cmd_shard(args) -> int:
    from .routing.serving import write_shards

    if args.verify is not None:
        return _verify_shard_dir(args.verify)
    if args.out is None:
        raise SystemExit("shard: --out is required (or use --verify DIR)")
    if args.replicas > 1 and not args.pack:
        raise SystemExit("--replicas requires --pack")
    if args.no_checksums and args.replicas > 1:
        raise SystemExit(
            "--no-checksums conflicts with --replicas: failover is "
            "driven by checksum verification"
        )
    session = _build_session(
        args.scheme, args.n, args.family, args.seed, args.preset
    )
    manifest = write_shards(
        session.scheme,
        args.out,
        spec_name=session.spec_name,
        params=session.params,
        seed=session.seed,
        packed=args.pack,
        checksums=not args.no_checksums,
        replicas=args.replicas,
    )
    print(f"{session.name} on {session.graph}")
    if args.pack:
        layout_note = (
            f"{manifest['files']['groups']} packed group files "
            f"(group size {manifest['group_size']}"
            + (", checksummed" if manifest.get("checksums") else "")
            + (
                f", x{manifest['replicas']} replicas"
                if manifest.get("replicas", 1) > 1 else ""
            )
            + ")"
        )
    else:
        layout_note = "one file per vertex"
    print(
        f"sharded to {args.out}: {manifest['n']} shards in "
        f"{layout_note}, {manifest['bytes']['total']} bytes total "
        f"(max {manifest['bytes']['max_shard']}, "
        f"avg {manifest['bytes']['avg_shard']}), codec v{manifest['codec']}"
    )
    print(
        f"word accounting: {manifest['words']['total_table_words']} table "
        f"words (reconciled with the in-memory scheme)"
    )
    return 0


def _verify_shard_dir(path: str) -> int:
    """`shard --verify DIR`: offline integrity sweep, exit 1 on damage."""
    from .routing.serving import verify_shard_dir

    try:
        report = verify_shard_dir(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot verify {path!r}: {exc}") from None
    bad = {unit: err for unit, err in report.items() if err != "ok"}
    print(
        f"verified {path}: {len(report) - len(bad)}/{len(report)} "
        f"units intact"
    )
    for unit, err in sorted(bad.items()):
        print(f"  CORRUPT {unit}: {err}")
    return 1 if bad else 0


def cmd_check(args) -> int:
    from .analysis.__main__ import run as run_analysis

    forwarded = list(args.paths)
    if args.json:
        forwarded.append("--json")
    for rule_id in args.select or ():
        forwarded.extend(["--select", rule_id])
    if args.list_rules:
        forwarded.append("--list-rules")
    return run_analysis(forwarded)


def _print_cluster_routes(session, args) -> int:
    """Route through a cluster-backed session, printing the canonical
    hop lines (byte-identical to single-process ``route --shards``)."""
    router = session.scheme
    n = router.n
    if args.pairs:
        pairs = [
            _wrap_pair(s, t, n)
            for s, t in sample_pairs(n, args.pairs, seed=args.seed)
        ]
    else:
        pairs = [_wrap_pair(args.source, args.target, n)]
    print(session.describe())
    results = router.route_batch(pairs)
    for (s, t), result in zip(pairs, results):
        print(_hop_line(s, t, result))
    stats = session.serve_stats()
    print(
        f"{stats['routes']} routes, {stats['total_hops']} hops over "
        f"{stats['rpcs']} RPCs ({stats['wire']['frame_header_bytes']} "
        f"frame-header bytes, "
        f"{stats['wire']['payload_bytes_sent'] + stats['wire']['payload_bytes_received']} "
        f"payload bytes)"
    )
    print(
        f"fleet stores: {stats['store']['loads']} shard loads "
        f"({stats['store']['bytes_read']} bytes), failovers "
        f"{stats['failovers']}"
    )
    health = session.health()
    print(
        f"health: {health['status']} (serving: {health['serving']}, "
        f"dead workers: {health['dead_workers']})"
    )
    return 0


def cmd_cluster_serve(args) -> int:
    import signal
    import threading

    from .cluster import save_cluster_spec, start_cluster
    from .routing.serving import ServingError

    try:
        handle = start_cluster(
            args.shards,
            workers=args.workers,
            max_resident=args.max_resident,
            host=args.host,
        )
    except (OSError, ValueError, ServingError) as exc:
        raise SystemExit(
            f"cannot serve {args.shards!r}: {exc}"
        ) from None
    with handle:
        save_cluster_spec(args.out, handle.spec())
        print(
            f"cluster up: {handle.placement.workers} workers "
            f"x{handle.placement.replicas} replicas over {args.shards}"
        )
        for w, (host, port) in sorted(handle.addresses.items()):
            print(f"  worker {w}: {host}:{port}")
        print(f"spec written to {args.out}; SIGINT/SIGTERM stops")
        stop = threading.Event()

        def _stop(signum, frame):
            stop.set()

        signal.signal(signal.SIGINT, _stop)
        signal.signal(signal.SIGTERM, _stop)
        stop.wait()
        print("stopping cluster")
    return 0


def cmd_cluster_route(args) -> int:
    from .api import RoutingSession
    from .cluster import start_cluster
    from .routing.serving import ServingError

    if (args.cluster is None) == (args.shards is None):
        raise SystemExit(
            "cluster route: pass exactly one of --cluster SPEC "
            "(a running fleet) or --shards DIR (ephemeral fleet)"
        )
    if args.cluster is not None:
        try:
            session = RoutingSession.connect(args.cluster)
        except (OSError, ValueError, ServingError) as exc:
            raise SystemExit(
                f"cannot connect to {args.cluster!r}: {exc}"
            ) from None
        with session.scheme:
            return _print_cluster_routes(session, args)
    try:
        handle = start_cluster(
            args.shards,
            workers=args.workers,
            max_resident=args.max_resident,
        )
    except (OSError, ValueError, ServingError) as exc:
        raise SystemExit(
            f"cannot serve {args.shards!r}: {exc}"
        ) from None
    with handle:
        with handle.router() as router:
            session = RoutingSession(
                router,
                spec_name=router.spec_name or "?",
                loaded=True,
            )
            return _print_cluster_routes(session, args)


def cmd_cluster_status(args) -> int:
    from .api import RoutingSession
    from .routing.serving import ServingError

    try:
        session = RoutingSession.connect(args.cluster)
    except (OSError, ValueError, ServingError) as exc:
        raise SystemExit(
            f"cannot connect to {args.cluster!r}: {exc}"
        ) from None
    with session.scheme as router:
        print(session.describe())
        health = router.health()
        stats = router.cluster_stats()
        print(
            f"health: {health['status']} (serving: {health['serving']})"
        )
        for w in sorted(stats["per_worker"]):
            status = stats["per_worker"][w]
            if status is None:
                print(f"  worker {w}: DEAD")
                continue
            store = status["store"]
            print(
                f"  worker {w}: {len(status['owned_groups'] or ())} "
                f"groups, {store['loads']} loads, "
                f"{store['bytes_read']} bytes read, "
                f"{sum(status['requests'].values())} requests"
            )
        print(
            f"fleet: {stats['store']['loads']} loads, "
            f"{stats['store']['bytes_read']} bytes read, "
            f"checksum failures {stats['store']['checksum_failures']}, "
            f"store failovers {stats['store']['failovers']}"
        )
    return 0


def cmd_load(args) -> int:
    try:
        session = load_session(args.path)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot load {args.path!r}: {exc}") from None
    print(f"loaded {session.name} [{session.spec_name}] on {session.graph}")
    if args.measure:
        rep = session.measure(count=args.measure, seed=args.seed)
        print(
            f"measured {args.measure} pairs: max stretch "
            f"{rep.max_stretch:.4f}, avg {rep.avg_stretch:.4f}"
        )
        return 0
    _print_route(session, args.source, args.target)
    return 0


#: build-style flag defaults — single source for _add_build_args and the
#: `route --shards` conflict check
_BUILD_DEFAULTS = {
    "scheme": "thm11",
    "family": "er",
    "n": 200,
    "seed": 0,
    "preset": "auto",
}


def _add_build_args(parser) -> None:
    parser.add_argument(
        "--scheme", default=_BUILD_DEFAULTS["scheme"],
        choices=scheme_names(),
    )
    parser.add_argument(
        "--family", default=_BUILD_DEFAULTS["family"], choices=FAMILIES
    )
    parser.add_argument("--n", type=int, default=_BUILD_DEFAULTS["n"])
    parser.add_argument("--seed", type=int, default=_BUILD_DEFAULTS["seed"])
    parser.add_argument(
        "--preset", default=_BUILD_DEFAULTS["preset"], metavar="NAME",
        help="workload-aware parameter preset: 'auto' (match --family, "
             "the default), 'none', or an explicit preset name",
    )


def _reject_build_flags_with_shards(args) -> None:
    """`--shards` serves what the manifest says — build flags conflict.

    Silently ignoring `--scheme thm10` while serving whatever the shard
    directory holds would let a user measure the wrong scheme without
    noticing; refuse instead.
    """
    overridden = [
        f"--{name}" for name, default in _BUILD_DEFAULTS.items()
        if getattr(args, name) != default
    ]
    if overridden:
        raise SystemExit(
            f"--shards serves the scheme/parameters recorded in the "
            f"shard manifest; {', '.join(overridden)} cannot apply — "
            f"drop the flag(s) or re-run `shard` with them"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list-schemes", help="print the scheme registry"
    )
    p_list.set_defaults(func=cmd_list_schemes)

    p_route = sub.add_parser("route", help="trace one message")
    _add_build_args(p_route)
    p_route.add_argument("--source", type=int, default=0)
    p_route.add_argument("--target", type=int, default=42)
    p_route.add_argument(
        "--shards", default=None, metavar="DIR",
        help="serve from a shard directory written by `shard` instead "
             "of building (loads only the shards the route visits)",
    )
    p_route.add_argument(
        "--max-resident", type=int, default=None, metavar="K",
        help="with --shards: keep at most K decoded shards resident "
             "(the serving node's memory budget)",
    )
    p_route.set_defaults(func=cmd_route)

    p_val = sub.add_parser("validate", help="structural validation")
    _add_build_args(p_val)
    p_val.add_argument("--pairs", type=int, default=300)
    p_val.set_defaults(func=cmd_validate)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1")
    p_t1.add_argument("--family", default="er", choices=FAMILIES)
    p_t1.add_argument("--n", type=int, default=250)
    p_t1.add_argument("--seed", type=int, default=0)
    p_t1.add_argument("--pairs", type=int, default=500)
    p_t1.add_argument(
        "--preset", default="auto", metavar="NAME",
        help="workload-aware parameter preset per scheme: 'auto' "
             "(match --family, the default), 'none', or a preset name",
    )
    p_t1.set_defaults(func=cmd_table1)

    p_save = sub.add_parser(
        "save", help="build a scheme and persist its routing state"
    )
    _add_build_args(p_save)
    p_save.add_argument("--out", required=True, help="output JSON path")
    p_save.set_defaults(func=cmd_save)

    p_shard = sub.add_parser(
        "shard",
        help="build a scheme and compile per-vertex binary shards",
    )
    _add_build_args(p_shard)
    p_shard.add_argument(
        "--out", default=None, help="output shard directory"
    )
    p_shard.add_argument(
        "--pack", action="store_true",
        help="write packed mmap-able group files instead of one file "
             "per vertex (layout v2/v3; `route --shards` auto-detects)",
    )
    p_shard.add_argument(
        "--no-checksums", action="store_true",
        help="write the plain v2 packed layout without CRC32 checksums "
             "(default: checksummed v3)",
    )
    p_shard.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="with --pack: write every group to R replica roots; "
             "serving fails over on read/checksum errors",
    )
    p_shard.add_argument(
        "--verify", default=None, metavar="DIR",
        help="skip building: run an offline integrity sweep over an "
             "existing shard directory (exit 1 if any unit is corrupt)",
    )
    p_shard.set_defaults(func=cmd_shard)

    p_check = sub.add_parser(
        "check",
        help="run the static invariant linter (repro.analysis rules)",
    )
    p_check.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    p_check.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    p_check.add_argument(
        "--json", action="store_true",
        help="emit findings as JSON objects (file, line, col, rule, message)",
    )
    p_check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    p_check.set_defaults(func=cmd_check)

    p_cluster = sub.add_parser(
        "cluster",
        help="multi-process serving over packed shards (repro.cluster)",
    )
    cluster_sub = p_cluster.add_subparsers(
        dest="cluster_command", required=True
    )

    p_cserve = cluster_sub.add_parser(
        "serve", help="start a worker fleet and block until signalled"
    )
    p_cserve.add_argument(
        "--shards", required=True, metavar="DIR",
        help="packed shard directory (`shard --pack [--replicas R]`)",
    )
    p_cserve.add_argument("--workers", type=int, default=4)
    p_cserve.add_argument(
        "--max-resident", type=int, default=None, metavar="K",
        help="per-worker decoded-shard LRU bound",
    )
    p_cserve.add_argument("--host", default="127.0.0.1")
    p_cserve.add_argument(
        "--out", default="cluster.json", metavar="PATH",
        help="where to write the reconnect spec (default cluster.json)",
    )
    p_cserve.set_defaults(func=cmd_cluster_serve)

    p_croute = cluster_sub.add_parser(
        "route", help="route messages through a worker fleet"
    )
    p_croute.add_argument(
        "--cluster", default=None, metavar="SPEC",
        help="cluster.json of a running fleet (from `cluster serve`)",
    )
    p_croute.add_argument(
        "--shards", default=None, metavar="DIR",
        help="start an ephemeral fleet over this shard directory",
    )
    p_croute.add_argument("--workers", type=int, default=4)
    p_croute.add_argument(
        "--max-resident", type=int, default=None, metavar="K",
        help="per-worker decoded-shard LRU bound (ephemeral fleet)",
    )
    p_croute.add_argument("--source", type=int, default=0)
    p_croute.add_argument("--target", type=int, default=42)
    p_croute.add_argument(
        "--pairs", type=int, default=0, metavar="P",
        help="route P seeded sampled pairs instead of --source/--target",
    )
    p_croute.add_argument("--seed", type=int, default=0)
    p_croute.set_defaults(func=cmd_cluster_route)

    p_cstatus = cluster_sub.add_parser(
        "status", help="fleet health and aggregated serve counters"
    )
    p_cstatus.add_argument(
        "--cluster", required=True, metavar="SPEC",
        help="cluster.json of the running fleet",
    )
    p_cstatus.set_defaults(func=cmd_cluster_status)

    p_load = sub.add_parser(
        "load", help="restore a saved scheme and serve it"
    )
    p_load.add_argument("path", help="session JSON written by `save`")
    p_load.add_argument("--source", type=int, default=0)
    p_load.add_argument("--target", type=int, default=42)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--measure", type=int, default=0, metavar="PAIRS",
        help="measure stretch over PAIRS sampled pairs instead of routing",
    )
    p_load.set_defaults(func=cmd_load)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
