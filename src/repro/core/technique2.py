"""Routing Technique 2 (Lemma 8): (1+eps) routing from ``U_i`` to ``W_i``.

Given a partition ``W = {W_1..W_q}`` of a target set ``W ⊆ V`` and a
partition ``U = {U_1..U_q}`` of ``V`` whose classes hit every ball
``B(u, q̃)`` (Lemma 6 guarantees this for coloring classes), route from any
vertex of ``U_i`` to any vertex of ``W_i`` on a ``(1+eps)``-stretch path.

Every vertex of ``U_i`` stores one Lemma 8 sequence per target in ``W_i``
(``O((1/eps) log D)`` words each).  A sequence either leads all the way to
the target ``w`` or ends at a *relay* — a ball-local member of the same
class ``U_i`` — which swaps in its own stored sequence for ``w``.  Claim 9
of the paper shows each relay hop strictly decreases the distance to ``w``
(by at least ``alpha_i (1 - 1/b)``), so the relay chain terminates and the
total detour telescopes to a ``(1 + 2/(b-1)) <= (1+eps)`` factor.

Like :class:`~repro.core.technique1.Technique1` this is a sub-scheme: it
installs its category into caller-owned tables and exposes local
``start``/``step`` primitives.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.metric import MetricView
from ..routing.model import SizedTable
from ..routing.ports import PortAssignment
from ..structures.balls import BallFamily
from .sequences import build_lemma8_sequence

__all__ = ["Technique2", "eps_to_b_lemma8"]


def eps_to_b_lemma8(eps: float) -> int:
    """The paper's ``b = ceil(2/eps) + 1`` (stretch ``1 + 2/(b-1)``)."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    return max(2, math.ceil(2.0 / eps) + 1)


class Technique2:
    """Preprocessed Lemma 8 structure over paired partitions ``U``, ``W``.

    Parameters
    ----------
    metric, family, ports:
        Shared substrates; ball first-edge ports must be installed by the
        caller under category ``"ball"``.
    source_partition:
        ``U_1..U_q`` — classes covering ``V``.
    target_partition:
        ``W_1..W_q`` — classes of the target set ``W`` (same count ``q``);
        ``W_i`` is reachable from sources in ``U_i``.
    eps:
        Target stretch ``1 + eps``.
    validate_hitting:
        Verify that every class intersects every ball (the Lemma 6
        precondition).  Disable only when the caller already guarantees it.

    The class-level defaults below back the step-only shells built by
    :meth:`stepper` (see :class:`~repro.core.technique1.Technique1`).
    """

    metric: Optional[MetricView] = None
    family: Optional[BallFamily] = None
    eps: Optional[float] = None
    b: Optional[int] = None
    lam: Optional[float] = None
    _class_of: Optional[List[int]] = None
    _target_class_of: Optional[Dict[int, int]] = None
    _relay_cache: Optional[Dict[Tuple[int, int], Optional[int]]] = None
    _sequences: Sequence[dict] = ()

    def __init__(
        self,
        metric: MetricView,
        family: BallFamily,
        ports: PortAssignment,
        source_partition: Sequence[Sequence[int]],
        target_partition: Sequence[Sequence[int]],
        eps: float,
        *,
        prefix: str = "t2:",
        validate_hitting: bool = True,
    ) -> None:
        if len(source_partition) != len(target_partition):
            raise ValueError(
                f"partition size mismatch: {len(source_partition)} source "
                f"classes vs {len(target_partition)} target classes"
            )
        self.metric = metric
        self.family = family
        self.ports = ports
        self.eps = eps
        self.b = eps_to_b_lemma8(eps)
        self.prefix = prefix
        self.cat_seq = f"{prefix}seq"
        # Edgeless (single-vertex) graphs have no sequences to normalize.
        self.lam = metric.tight_min_weight() if metric.graph.m > 0 else 1.0

        self._class_of: List[int] = [-1] * metric.n
        for idx, cls in enumerate(source_partition):
            for v in cls:
                if self._class_of[v] != -1:
                    raise ValueError(f"vertex {v} appears in two source classes")
                self._class_of[v] = idx
        if any(c == -1 for c in self._class_of):
            missing = self._class_of.index(-1)
            raise ValueError(f"source partition does not cover vertex {missing}")

        self._target_class_of: Dict[int, int] = {}
        for idx, cls in enumerate(target_partition):
            for w in cls:
                if w in self._target_class_of:
                    raise ValueError(f"target {w} appears in two target classes")
                self._target_class_of[w] = idx

        if validate_hitting:
            self._validate_ball_hitting(len(source_partition))

        # Nearest same-class relay in each ball, per class: relay[i][x].
        # (Computed lazily per class while building sequences.)
        self._relay_cache: Dict[Tuple[int, int], Optional[int]] = {}

        # sequences[u][w] = waypoints tuple
        self._sequences: List[Dict[int, Tuple[int, ...]]] = [
            {} for _ in range(metric.n)
        ]
        for i, (u_cls, w_cls) in enumerate(
            zip(source_partition, target_partition)
        ):
            for u in u_cls:
                for w in w_cls:
                    if u == w:
                        continue
                    seq = build_lemma8_sequence(
                        metric,
                        family,
                        lambda x, i=i: self._relay_in_ball(i, x),
                        u,
                        w,
                        self.b,
                        self.lam,
                    )
                    self._sequences[u][w] = seq.waypoints

    # ------------------------------------------------------------------
    @classmethod
    def stepper(cls, ports: PortAssignment, *, prefix: str = "t2:") -> "Technique2":
        """A step-only instance for restored (deserialized) schemes.

        The ``start``/``step`` primitives consult only the local table and
        ``ports``; the preprocessing state (metric, sequences, relays)
        lives in the persisted tables, so this shell is all a rebuilt
        scheme needs — everything else falls through to the class-level
        placeholders.
        """
        self = object.__new__(cls)
        self.ports = ports
        self.prefix = prefix
        self.cat_seq = f"{prefix}seq"
        return self

    def _validate_ball_hitting(self, q: int) -> None:
        for x, ball in enumerate(self.family.balls()):
            present = {self._class_of[y] for y in ball}
            if len(present) < q:
                missing = sorted(set(range(q)) - present)
                raise ValueError(
                    f"B({x}) misses source classes {missing}; Lemma 8 "
                    f"requires every class to hit every ball (Lemma 6)"
                )

    def _relay_in_ball(self, class_index: int, x: int) -> Optional[int]:
        """Nearest member of class ``class_index`` in ``B(x)`` (cached)."""
        key = (class_index, x)
        if key not in self._relay_cache:
            relay = next(
                (
                    y
                    for y in self.family.ball(x)
                    if self._class_of[y] == class_index
                ),
                None,
            )
            self._relay_cache[key] = relay
        return self._relay_cache[key]

    def class_of(self, v: int) -> int:
        """Source-class index of ``v``."""
        return self._class_of[v]

    def target_class_of(self, w: int) -> int:
        """Target-class index of ``w`` (raises for non-targets)."""
        return self._target_class_of[w]

    def install(self, table: SizedTable) -> None:
        """Install this vertex's Lemma 8 sequences into its sized table."""
        for w, waypoints in self._sequences[table.owner].items():
            table.put(self.cat_seq, w, waypoints)

    # ------------------------------------------------------------------
    # Distributed primitives
    # ------------------------------------------------------------------
    def start(self, table: SizedTable, u: int, w: int) -> tuple:
        """Initial technique header at a source ``u ∈ U_i`` for ``w ∈ W_i``."""
        waypoints = table.get(self.cat_seq, w)
        if waypoints is None:
            detail = (
                ""
                if self._class_of is None
                else f" (source class {self._class_of[u]})"
            )
            raise ValueError(
                f"{u} stores no Lemma 8 sequence for {w}{detail}"
            )
        return (0, waypoints)

    def step(
        self, table: SizedTable, u: int, header: tuple, w: int
    ) -> Tuple[Optional[int], tuple]:
        """One local decision at ``u``; ``(None, header)`` means arrived.

        When the waypoints run out away from ``w``, the current vertex is a
        relay of the source class (Lemma 8 invariant) and swaps in its own
        stored sequence for ``w``.
        """
        if u == w:
            return None, header
        idx, waypoints = header
        while idx < len(waypoints) and waypoints[idx] == u:
            idx += 1
        if idx == len(waypoints):
            waypoints = table.get(self.cat_seq, w)
            if waypoints is None:
                raise RuntimeError(
                    f"relay chain reached {u}, which stores no sequence "
                    f"for {w}; Lemma 8 invariant broken"
                )
            idx = 0
            while idx < len(waypoints) and waypoints[idx] == u:
                idx += 1
            if idx == len(waypoints):
                raise RuntimeError(f"empty relay sequence at {u} for {w}")
        target = waypoints[idx]
        port = table.get("ball", target)
        if port is None:
            port = self.ports.port_to(u, target)
        return port, (idx, waypoints)
