"""The paper's primary contribution: the two new routing techniques."""

from .sequences import (
    Lemma7Sequence,
    Lemma8Sequence,
    build_lemma7_sequence,
    build_lemma8_sequence,
)
from .index_selection import lemma12_index, lemma14_index, verify_series_hypotheses
from .technique1 import Technique1, eps_to_b_lemma7
from .technique2 import Technique2, eps_to_b_lemma8

__all__ = [
    "Lemma7Sequence",
    "Lemma8Sequence",
    "build_lemma7_sequence",
    "build_lemma8_sequence",
    "lemma12_index",
    "lemma14_index",
    "verify_series_hypotheses",
    "Technique1",
    "eps_to_b_lemma7",
    "Technique2",
    "eps_to_b_lemma8",
]
