"""The index-selection lemmas (Lemmas 12 and 14, after [20]).

The generalized schemes pick, at the source, which ball level ``j`` and
landmark level ``k`` to route through.  The choice is
``argmin_j (a_j + b_{pair(j)})`` over the scheme's instances, and the
paper's Lemmas 12/14 bound the value of that minimum:

* **Lemma 12** — series ``{x_i}, {y_i} ⊆ [0,1]`` with ``x_0 = y_0 = 0``
  and ``x_i + y_{l-i} <= 1`` for all ``i``: some ``i ∈ {0..l-1}`` has
  ``x_i + y_{l-i-1} <= 1 - 1/l``.
* **Lemma 14** — same hypotheses: some ``i ∈ {0..l-1}`` has
  ``x_{i+1} + y_{l-i} <= 1 + 1/l``.

These are pure combinatorial facts; this module states them as code (with
constructive index selection and the paper's highest-index tie rule) so
the property tests in ``tests/core/test_index_selection.py`` can verify
them over random series — the reproduction's check of the stretch
analysis' combinatorial core.

Proof sketch (Lemma 12): summing the telescoping differences, the ``l``
values ``x_i + y_{l-i-1}`` average at most
``(1/l)·sum_i (x_i + y_{l-i}) - y_l/l <= 1 - 1/l`` once one uses
``x_0 = y_0 = 0``; the minimum is at most the average.  Lemma 14 is the
mirrored statement one index up.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = [
    "lemma12_index",
    "lemma14_index",
    "verify_series_hypotheses",
]


def verify_series_hypotheses(
    xs: Sequence[float], ys: Sequence[float]
) -> None:
    """Raise unless ``xs``/``ys`` satisfy the lemmas' hypotheses."""
    if len(xs) != len(ys):
        raise ValueError(
            f"series lengths differ: {len(xs)} vs {len(ys)}"
        )
    if len(xs) < 2:
        raise ValueError("series need at least two entries (l >= 1)")
    ell = len(xs) - 1
    if xs[0] != 0 or ys[0] != 0:
        raise ValueError("x_0 and y_0 must be 0")
    for i, (x, y) in enumerate(zip(xs, ys)):
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ValueError(f"series values must lie in [0,1] (index {i})")
    for i in range(ell + 1):
        if xs[i] + ys[ell - i] > 1.0 + 1e-12:
            raise ValueError(
                f"hypothesis x_{i} + y_{ell - i} <= 1 violated "
                f"({xs[i]} + {ys[ell - i]})"
            )


def lemma12_index(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[int, float]:
    """Lemma 12: an index ``i`` with ``x_i + y_{l-i-1} <= 1 - 1/l``.

    Returns ``(i, value)`` for the *minimizing* ``i`` (ties to the highest
    index, the paper's routing rule).  The returned value is guaranteed to
    be at most ``1 - 1/l``; a violation means the hypotheses were broken
    and raises.
    """
    verify_series_hypotheses(xs, ys)
    ell = len(xs) - 1
    best_i, best_val = 0, float("inf")
    for i in range(ell):
        val = xs[i] + ys[ell - i - 1]
        if val <= best_val:
            best_i, best_val = i, val
    if best_val > 1.0 - 1.0 / ell + 1e-9:
        raise AssertionError(
            f"Lemma 12 violated: min value {best_val} > 1 - 1/{ell}"
        )
    return best_i, best_val


def lemma14_index(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[int, float]:
    """Lemma 14: an index ``i`` with ``x_{i+1} + y_{l-i} <= 1 + 1/l``.

    Same conventions as :func:`lemma12_index`.
    """
    verify_series_hypotheses(xs, ys)
    ell = len(xs) - 1
    best_i, best_val = 0, float("inf")
    for i in range(ell):
        val = xs[i + 1] + ys[ell - i]
        if val <= best_val:
            best_i, best_val = i, val
    if best_val > 1.0 + 1.0 / ell + 1e-9:
        raise AssertionError(
            f"Lemma 14 violated: min value {best_val} > 1 + 1/{ell}"
        )
    return best_i, best_val
