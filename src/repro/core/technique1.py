"""Routing Technique 1 (Lemma 7): (1+eps) routing inside partition classes.

Given a partition ``U = {U_1..U_q}`` of ``V`` into classes of size
``Õ(n/q)``, this technique routes between any two vertices of the *same*
class on a ``(1+eps)``-stretch path.  Per vertex it stores

* the ball first-edge ports (installed by the caller, category ``"ball"``),
* a tree-routing record for the global shortest-path tree ``T(h)`` of every
  hitting-set vertex ``h ∈ H`` (``H`` hits every ball; Lemma 5),
* for every same-class destination ``v``: the Lemma 7 waypoint sequence and,
  when it ends at a hub ``h ∈ H``, the label of ``v`` in ``T(h)``.

The header carries the remaining waypoints (≤ ``2b+2`` words) plus at most
one tree label, matching the paper's ``O((1/eps) log n + log^2 n/loglog n)``
bits.

This class is a *sub-scheme*: a parent :class:`CompactRoutingScheme` owns
the per-vertex :class:`SizedTable`; the technique installs its categories
into them and exposes ``start``/``step`` primitives that read only the local
table, keeping the distributed discipline intact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graph.metric import MetricView
from ..graph.trees import RootedTree
from ..routing.model import SizedTable
from ..routing.ports import PortAssignment
from ..routing.tree_routing import TreeRouting, tree_step
from ..structures.balls import BallFamily
from ..structures.hitting_set import greedy_hitting_set, random_hitting_set
from .sequences import build_lemma7_sequence

__all__ = ["Technique1", "eps_to_b_lemma7"]


def eps_to_b_lemma7(eps: float) -> int:
    """The paper's ``b = ceil(2 / eps)``."""
    import math

    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    return max(1, math.ceil(2.0 / eps))


def _global_tree(metric: MetricView, root: int) -> RootedTree:
    tree_parent = metric.spt_parents(root)
    if len(tree_parent) != metric.n:
        missing = next(v for v in metric.graph.vertices() if v not in tree_parent)
        raise ValueError(f"graph disconnected: {missing} unreachable from {root}")
    return RootedTree(tree_parent)


class Technique1:
    """Preprocessed Lemma 7 structure over one partition.

    Parameters
    ----------
    metric, family, ports:
        Shared substrates (balls must be the family the caller installed
        ball-routing ports for, category ``"ball"``).
    partition:
        The classes ``U_1..U_q`` (lists of vertex ids covering ``V``).
    eps:
        Target stretch is ``1 + eps``.
    hitting:
        Optional pre-computed hitting set of all balls; computed greedily
        when omitted.  Substrate-backed schemes pass the memoized set
        (``SchemeBase._ball_hitting_set``) — it is eps-independent, so
        parameter sweeps reuse it.
    tree_factory:
        Optional ``root -> TreeRouting`` for the global hitting-set
        trees; defaults to a cold per-instance build.  Substrate-backed
        schemes pass ``SchemeBase._global_tree_routing`` so the ~|H|
        full-graph trees (the other eps-independent half of this
        technique's state, and a dominant cost of thm10's marginal
        build) are shared across schemes and sweeps.
    tree_prefetch:
        Optional ``roots -> None`` hook invoked once with the whole
        hitting set before any tree is built, letting the metric stage
        all ~|H| SPT predecessor rows in one batched sweep
        (:meth:`MetricView.prefetch_spt_parents`); schemes pass
        ``SchemeBase._prefetch_global_trees``.  Cold builds without a
        factory prefetch through the metric directly.  Trees are
        bit-identical with or without the hook.
    prefix:
        Category prefix inside the shared tables (several technique
        instances may coexist, e.g. in the generalized schemes).

    The class-level defaults below back the step-only shells built by
    :meth:`stepper`: ``start``/``step`` read none of the preprocessing
    state, so restored instances simply inherit these placeholders and a
    new ``__init__`` attribute needs no matching stepper edit.
    """

    metric: Optional[MetricView] = None
    family: Optional[BallFamily] = None
    eps: Optional[float] = None
    b: Optional[int] = None
    hitting: Sequence[int] = ()
    _hitting_set: frozenset = frozenset()
    _trees: Optional[Dict[int, TreeRouting]] = None
    _class_of: Optional[List[int]] = None
    _sequences: Sequence[dict] = ()

    def __init__(
        self,
        metric: MetricView,
        family: BallFamily,
        ports: PortAssignment,
        partition: Sequence[Sequence[int]],
        eps: float,
        *,
        hitting: Optional[Sequence[int]] = None,
        tree_factory: Optional[Callable[[int], TreeRouting]] = None,
        tree_prefetch: Optional[Callable[[Sequence[int]], None]] = None,
        prefix: str = "t1:",
        seed: int = 0,
        use_greedy_hitting: bool = True,
    ) -> None:
        self.metric = metric
        self.family = family
        self.ports = ports
        self.eps = eps
        self.b = eps_to_b_lemma7(eps)
        self.prefix = prefix
        self.cat_seq = f"{prefix}seq"
        self.cat_htree = f"{prefix}htree"

        if hitting is None:
            balls = family.balls()
            if use_greedy_hitting:
                hitting = greedy_hitting_set(balls)
            else:
                hitting = random_hitting_set(balls, metric.n, seed=seed)
        self.hitting = sorted(hitting)
        # Frozen once; build_lemma7_sequence runs per (u, v) pair and must
        # not rebuild an O(|H|) set every call.
        self._hitting_set = frozenset(self.hitting)

        # Stage all ~|H| SPT predecessor rows in one batched sweep before
        # the per-root loop (bit-identical trees; just fewer Dijkstra
        # calls, multiprocess under REPRO_PARALLEL).
        if tree_prefetch is not None:
            tree_prefetch(self.hitting)
        elif tree_factory is None:
            prefetch = getattr(metric, "prefetch_spt_parents", None)
            if prefetch is not None:
                prefetch(self.hitting)
        self._trees: Dict[int, TreeRouting] = {}
        for h in self.hitting:
            if tree_factory is not None:
                self._trees[h] = tree_factory(h)
            else:
                self._trees[h] = TreeRouting(_global_tree(metric, h), ports)

        # class index of each vertex (for diagnostics / validation)
        self._class_of: List[int] = [-1] * metric.n
        for idx, cls in enumerate(partition):
            for v in cls:
                if self._class_of[v] != -1:
                    raise ValueError(f"vertex {v} appears in two classes")
                self._class_of[v] = idx
        if any(c == -1 for c in self._class_of):
            missing = self._class_of.index(-1)
            raise ValueError(f"partition does not cover vertex {missing}")

        # sequences[u][v] = (waypoints, tree_label_or_None)
        self._sequences: List[Dict[int, Tuple[Tuple[int, ...], Optional[tuple]]]] = [
            {} for _ in range(metric.n)
        ]
        for cls in partition:
            for u in cls:
                for v in cls:
                    if u == v:
                        continue
                    seq = build_lemma7_sequence(
                        metric, family, self._hitting_set, u, v, self.b
                    )
                    tlabel = (
                        self._trees[seq.hub].label_of(v)
                        if seq.hub is not None
                        else None
                    )
                    self._sequences[u][v] = (seq.waypoints, tlabel)

    # ------------------------------------------------------------------
    @classmethod
    def stepper(cls, ports: PortAssignment, *, prefix: str = "t1:") -> "Technique1":
        """A step-only instance for restored (deserialized) schemes.

        ``start``/``step`` read nothing but the local table, the header and
        ``ports`` — the distributed discipline — so a scheme rebuilt from
        persisted tables only needs this shell, not the preprocessing state
        (metric, hitting set, sequences) that produced the tables; those
        attributes fall through to the class-level placeholders.
        """
        self = object.__new__(cls)
        self.ports = ports
        self.prefix = prefix
        self.cat_seq = f"{prefix}seq"
        self.cat_htree = f"{prefix}htree"
        return self

    def class_of(self, v: int) -> int:
        """Partition-class index of ``v``."""
        return self._class_of[v]

    def install(self, table: SizedTable) -> None:
        """Install this vertex's Lemma 7 state into its sized table."""
        u = table.owner
        for h, tree in self._trees.items():
            table.put(self.cat_htree, h, tree.record_of(u))
        for v, entry in self._sequences[u].items():
            table.put(self.cat_seq, v, entry)

    # ------------------------------------------------------------------
    # Distributed primitives (read only the local table + header)
    # ------------------------------------------------------------------
    def start(self, table: SizedTable, u: int, v: int) -> tuple:
        """Build the initial technique header at source ``u`` for ``v``."""
        entry = table.get(self.cat_seq, v)
        if entry is None:
            detail = (
                ""
                if self._class_of is None
                else f" (classes {self._class_of[u]} vs {self._class_of[v]})"
            )
            raise ValueError(
                f"{u} stores no Lemma 7 sequence for {v}{detail}"
            )
        waypoints, tlabel = entry
        return ("seq", 0, waypoints, tlabel)

    def step(
        self, table: SizedTable, u: int, header: tuple, v: int
    ) -> Tuple[Optional[int], tuple]:
        """One local decision at ``u``; returns ``(port, header)``.

        ``port is None`` means the message is at ``v``.
        """
        if u == v:
            return None, header
        if header[0] == "tree":
            _, hub, tlabel = header
            record = table.get(self.cat_htree, hub)
            if record is None:
                raise RuntimeError(f"{u} lacks a record for hub tree {hub}")
            port = tree_step(record, tlabel)
            if port is None:
                raise RuntimeError(
                    f"tree phase claims delivery at {u} but target is {v}"
                )
            return port, header
        _, idx, waypoints, tlabel = header
        while idx < len(waypoints) and waypoints[idx] == u:
            idx += 1
        if idx == len(waypoints):
            # Waypoints exhausted away from v: u is the hub (Lemma 7
            # invariant); continue on u's global tree toward v.
            if tlabel is None:
                raise RuntimeError(
                    f"sequence for {v} exhausted at {u} without a tree label"
                )
            header = ("tree", u, tlabel)
            record = table.get(self.cat_htree, u)
            if record is None:
                raise RuntimeError(f"exhausted at non-hub vertex {u}")
            port = tree_step(record, tlabel)
            if port is None:
                raise RuntimeError(
                    f"tree phase claims delivery at {u} but target is {v}"
                )
            return port, header
        target = waypoints[idx]
        port = table.get("ball", target)
        if port is None:
            # The waypoint must then be a direct neighbour (boundary edge).
            port = self.ports.port_to(u, target)
        return port, ("seq", idx, waypoints, tlabel)
