"""Waypoint-sequence construction — the combinatorial core of Lemmas 7 and 8.

Both routing techniques store, per (source, destination) pair, a short
sequence of *waypoints* along a shortest path.  Every waypoint is reachable
from the routing position either through ball routing (it lies in the
current vertex's vicinity) or over a single direct link, so a constant
number of words per waypoint suffices to follow an (almost) shortest path
arbitrarily far.

:func:`build_lemma7_sequence`
    The Lemma 7 process: walk the shortest path ``u -> v``; while the
    remaining step to the ball boundary advances at least ``s = d(u,v)/b``,
    record the boundary edge ``(y, z)`` and continue from ``z``; otherwise
    finish, either at ``v`` itself or at a *hitting-set* vertex ``w ∈ H``
    inside the current ball (the message then rides the global shortest-path
    tree ``T(w)``).  At most ``2b + 2`` waypoints.

:func:`build_lemma8_sequence`
    The Lemma 8 process: the first two path vertices, then *subsequences*
    with geometrically doubling thresholds ``s_k = 2^k * lam / b`` (``lam``
    is the minimum shortest-path edge weight, the paper's normalization).
    A subsequence ends at ``w``, or at a *relay* vertex of the source's own
    partition class (which owns its own stored sequence for ``w`` —
    Claim 9 guarantees the relay is strictly closer to ``w``), or fills up
    (``2b`` vertices) and hands over to the next threshold.  At most
    ``O(log (n * D))`` subsequences.

Sequences never contain the source itself; consecutive duplicates are
impossible by construction but the routing loop skips them defensively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..graph.metric import MetricView
from ..structures.balls import BallFamily

__all__ = [
    "Lemma7Sequence",
    "Lemma8Sequence",
    "build_lemma7_sequence",
    "build_lemma8_sequence",
]


@dataclass(frozen=True)
class Lemma7Sequence:
    """Stored routing information of one Lemma 7 pair ``(u, v)``.

    ``waypoints`` is the paper's ``<x_1 .. x_b'>``; when ``hub`` is not
    ``None`` the sequence ends at that hitting-set vertex and the message
    finishes on the global shortest-path tree rooted there.  The routing
    loop identifies the hub as "the vertex where the waypoints ran out", so
    the hub id itself need not travel in the header.
    """

    waypoints: Tuple[int, ...]
    hub: Optional[int]

    @property
    def via_hub(self) -> bool:
        return self.hub is not None

    def words(self) -> int:
        return len(self.waypoints) + 1


@dataclass(frozen=True)
class Lemma8Sequence:
    """Stored routing information of one Lemma 8 pair ``(u, w)``.

    When ``to_relay`` is set the final waypoint is a relay in the source's
    partition class; the relay continues with its own stored sequence.
    """

    waypoints: Tuple[int, ...]
    to_relay: bool

    def words(self) -> int:
        return len(self.waypoints) + 1


def build_lemma7_sequence(
    metric: MetricView,
    family: BallFamily,
    hitting: Sequence[int],
    u: int,
    v: int,
    b: int,
) -> Lemma7Sequence:
    """Compute the Lemma 7 waypoint sequence from ``u`` to ``v``.

    Parameters
    ----------
    hitting:
        A hitting set for all balls of ``family`` (Lemma 5).  Passing a
        ``set``/``frozenset`` avoids the per-call O(|H|) conversion — this
        function runs once per same-class (source, destination) pair.
    b:
        The paper's ``b = ceil(2 / eps)``; the progress threshold is
        ``s = d(u, v) / b``.
    """
    if u == v:
        raise ValueError("no sequence for a vertex to itself")
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    hitting_set = (
        hitting if isinstance(hitting, (set, frozenset)) else set(hitting)
    )
    s = metric.d(u, v) / b
    waypoints: List[int] = []
    x = u

    def push(vertex: int) -> None:
        # Never store the source; the routing loop starts at u.
        if vertex != u and (not waypoints or waypoints[-1] != vertex):
            waypoints.append(vertex)

    for _ in range(b + 2):
        if family.contains(x, v):
            push(v)
            return Lemma7Sequence(tuple(waypoints), hub=None)
        y, z = family.boundary_edge(x, v)
        if z == v:
            push(y)
            push(v)
            return Lemma7Sequence(tuple(waypoints), hub=None)
        if metric.d(x, z) < s:
            hub = next(
                (h for h in family.ball(x) if h in hitting_set), None
            )
            if hub is None:
                raise RuntimeError(
                    f"hitting set misses B({x}); Lemma 5 postcondition broken"
                )
            push(hub)
            return Lemma7Sequence(tuple(waypoints), hub=hub)
        push(y)
        push(z)
        x = z
    raise RuntimeError(
        f"Lemma 7 sequence for ({u},{v}) exceeded {b} rounds; "
        "threshold accounting is broken"
    )


def _lemma8_subsequence(
    metric: MetricView,
    family: BallFamily,
    relay_pool: Callable[[int], Optional[int]],
    x: int,
    w: int,
    s: float,
    b: int,
    push: Callable[[int], None],
) -> Tuple[str, int]:
    """One Lemma 8 subsequence from start vertex ``x`` with threshold ``s``.

    Returns ``(state, last_vertex)`` where state is ``"w"`` (reached the
    target), ``"relay"`` (ended at a relay) or ``"full"`` (2b vertices
    added; continue with a doubled threshold from ``last_vertex``).
    """
    added = 0
    xi = x
    while True:
        if family.contains(xi, w):
            push(w)
            return "w", w
        y, z = family.boundary_edge(xi, w)
        if z == w:
            push(y)
            push(w)
            return "w", w
        if metric.d(xi, z) < s:
            relay = relay_pool(xi)
            if relay is None:
                raise RuntimeError(
                    f"no relay of the source class in B({xi}); "
                    "Lemma 6 hitting property broken"
                )
            push(relay)
            return "relay", relay
        push(y)
        push(z)
        added += 2
        xi = z
        if added >= 2 * b:
            return "full", z


def build_lemma8_sequence(
    metric: MetricView,
    family: BallFamily,
    relay_pool: Callable[[int], Optional[int]],
    u: int,
    w: int,
    b: int,
    lam: float,
) -> Lemma8Sequence:
    """Compute the Lemma 8 sequence from ``u`` toward ``w``.

    Parameters
    ----------
    relay_pool:
        ``x -> relay`` returning a vertex of the *source's* partition class
        inside ``B(x)`` (or ``None``, which is a construction error because
        the class hits every ball by Lemma 6).
    b:
        The paper's ``b = ceil(2/eps) + 1``.
    lam:
        Minimum shortest-path edge weight (``omega_min``); thresholds are
        ``s_k = 2^k * lam / b``.
    """
    if u == w:
        raise ValueError("no sequence for a vertex to itself")
    if lam <= 0:
        raise ValueError(f"normalization weight must be positive, got {lam}")
    waypoints: List[int] = []

    def push(vertex: int) -> None:
        if vertex != u and (not waypoints or waypoints[-1] != vertex):
            waypoints.append(vertex)

    u1 = metric.next_hop(u, w)
    push(u1)
    if u1 == w:
        return Lemma8Sequence(tuple(waypoints), to_relay=False)
    u2 = metric.next_hop(u1, w)
    push(u2)
    if u2 == w:
        return Lemma8Sequence(tuple(waypoints), to_relay=False)

    # Subsequence cap: path lengths are below n * max-distance, thresholds
    # double, so log2(n * D) + slack rounds always suffice.  diameter() is
    # cached by the metric — this runs once per (source, target) pair.
    diameter = max(metric.diameter(), lam)
    max_rounds = int(math.log2(max(2.0, metric.n * diameter / lam))) + 4
    x = u2
    s = 2.0 * lam / b
    for _ in range(max_rounds):
        state, last = _lemma8_subsequence(
            metric, family, relay_pool, x, w, s, b, push
        )
        if state == "w":
            return Lemma8Sequence(tuple(waypoints), to_relay=False)
        if state == "relay":
            return Lemma8Sequence(tuple(waypoints), to_relay=True)
        x = last
        s *= 2.0
    raise RuntimeError(
        f"Lemma 8 sequence for ({u},{w}) exceeded {max_rounds} subsequences; "
        "geometric threshold accounting is broken"
    )
