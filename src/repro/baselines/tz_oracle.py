"""The Thorup–Zwick (2k-1)-stretch approximate distance oracle ([22]).

The centralized counterpart the paper's routing schemes are measured
against.  Stores ``O(k n^{1+1/k})`` total words; answers
``query(u, v) <= (2k-1) d(u, v)`` in ``O(k)`` time.

Structures per vertex ``v``:

* pivots ``p_i(v)`` and their distances, ``i = 0..k-1``,
* the bunch ``B(v)`` as a hash map ``w -> d(v, w)``.

The query is the classic pivot ladder: walk ``w = p_j(u)`` upward,
swapping ``u`` and ``v`` each round, until ``w ∈ B(v)``; return
``d(u, w) + d(w, v)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..graph.core import Graph
from ..graph.metric import MetricView
from .hierarchy import SampledHierarchy

__all__ = ["TZOracle"]


class TZOracle:
    """The (2k-1)-stretch distance oracle of Thorup and Zwick."""

    def __init__(
        self,
        graph: Graph,
        k: int = 2,
        *,
        seed: int = 0,
        metric: Optional[MetricView] = None,
        hierarchy: Optional[SampledHierarchy] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"oracle needs k >= 1, got {k}")
        self.graph = graph
        self.k = k
        self.name = f"TZ oracle 2k-1 (k={k})"
        self.metric = metric if metric is not None else MetricView(graph)
        if k == 1:
            # Degenerate exact oracle (the paper's k=1 row): stores all
            # pairwise distances.  Row-at-a-time extraction keeps this a
            # sequential scan over the metric's row oracle rather than n^2
            # scalar d() calls.
            self.hierarchy = None
            self._bunch_dist = []
            for v in graph.vertices():
                row = self.metric.row(v)
                self._bunch_dist.append(
                    {
                        w: float(row[w])
                        for w in graph.vertices()
                        if w != v
                    }
                )
            self._pivots = [[(v, 0.0)] for v in graph.vertices()]
            return
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else SampledHierarchy(self.metric, k, seed=seed)
        )
        self._bunch_dist: List[Dict[int, float]] = []
        for v in graph.vertices():
            row = self.metric.row(v)
            self._bunch_dist.append(
                {w: float(row[w]) for w in self.hierarchy.bunch(v)}
            )
        self._pivots = [
            [
                (
                    self.hierarchy.pivot(i, v),
                    self.hierarchy.pivot_distance(i, v),
                )
                for i in range(k)
            ]
            for v in graph.vertices()
        ]

    # ------------------------------------------------------------------
    def stretch_bound(self) -> float:
        return 2.0 * self.k - 1.0

    def query(self, u: int, v: int) -> float:
        """A ``(2k-1)``-stretch distance estimate."""
        if u == v:
            return 0.0
        w = u
        j = 0
        while w not in self._bunch_dist[v] and w != v:
            j += 1
            if j >= self.k:
                raise RuntimeError(
                    "pivot ladder exceeded k rounds; hierarchy broken"
                )
            u, v = v, u
            w = self._pivots[u][j][0]
        d_uw = self._pivots[u][j][1] if j > 0 else 0.0
        d_wv = 0.0 if w == v else self._bunch_dist[v][w]
        return d_uw + d_wv

    # ------------------------------------------------------------------
    def space_words(self) -> Dict[str, int]:
        """Total and per-vertex-max storage in words."""
        per_vertex = [
            2 * len(self._bunch_dist[v]) + 2 * len(self._pivots[v])
            for v in self.graph.vertices()
        ]
        return {
            "total": sum(per_vertex),
            "max_per_vertex": max(per_vertex, default=0),
        }
