"""Graph spanners — the paper's sibling primitive (Section 1, [5, 9]).

The paper frames routing schemes against the spanner/distance-oracle
tradeoff: a ``(2k-1)``-spanner with ``O(n^{1+1/k})`` edges exists and is
tight under the girth conjecture.  Two classic constructions:

* :func:`greedy_spanner` — Althöfer et al. [5]: scan edges by increasing
  weight; keep an edge iff the spanner built so far cannot connect its
  endpoints within ``(2k-1)`` times its weight.  Deterministic, meets the
  ``O(n^{1+1/k})`` bound.
* :func:`baswana_sen_spanner` — Baswana & Sen [9]: randomized clustering,
  ``k-1`` rounds of cluster sampling with probability ``n^{-1/k}``
  followed by a vertex-cluster joining phase.  Expected size
  ``O(k n^{1+1/k})``, linear time (up to our Python constants).

Both return subgraphs of the input; the ``(2k-1)``-stretch property is
asserted by the property tests in ``tests/baselines/test_spanners.py``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..graph.core import Graph
from ..graph.shortest_paths import bounded_distance, use_kernel

__all__ = ["greedy_spanner", "baswana_sen_spanner", "spanner_stretch_ok"]


def greedy_spanner(g: Graph, k: int) -> Graph:
    """The Althöfer et al. greedy ``(2k-1)``-spanner.

    Size is ``O(n^{1+1/k})``: the spanner has girth above ``2k``, so the
    Bondy–Simonovits bound applies.
    """
    if k < 1:
        raise ValueError(f"spanner parameter k must be >= 1, got {k}")
    spanner = Graph(g.n)
    stretch = 2 * k - 1
    # The spanner mutates between queries, so the dispatch stays on the
    # pure path here (a CSR rebuild per query would dominate).
    for u, v, w in sorted(g.edges(), key=lambda e: (e[2], e[0], e[1])):
        if bounded_distance(spanner, u, v, stretch * w) > stretch * w:
            spanner.add_edge(u, v, w)
    return spanner


def baswana_sen_spanner(g: Graph, k: int, seed: int = 0) -> Graph:
    """The Baswana–Sen randomized ``(2k-1)``-spanner.

    ``k-1`` clustering rounds: unsampled clustered vertices either join an
    adjacent sampled cluster through their lightest edge (also keeping one
    lightest edge to every *strictly closer* adjacent cluster) or, when no
    adjacent cluster was sampled, keep one lightest edge to every adjacent
    cluster and leave the clustering.  A final vertex-cluster phase joins
    every remaining vertex to every adjacent final cluster.
    """
    if k < 1:
        raise ValueError(f"spanner parameter k must be >= 1, got {k}")
    rng = random.Random(seed)
    n = g.n
    spanner = Graph(n)
    p = n ** (-1.0 / k) if n > 1 else 0.0

    def add(u: int, v: int, w: float) -> None:
        if not spanner.has_edge(u, v):
            spanner.add_edge(u, v, w)

    # cluster[v] = center id, or None once v left the clustering
    cluster: List[Optional[int]] = list(range(n))
    # Residual edge set: edges not yet resolved (both endpoints clustered,
    # different clusters).
    edges = {(u, v): w for u, v, w in g.edges()}

    for _ in range(k - 1):
        centers = {c for c in cluster if c is not None}
        sampled = {c for c in centers if rng.random() < p}
        new_cluster: List[Optional[int]] = [None] * n
        for v in range(n):
            if cluster[v] is None:
                continue
            if cluster[v] in sampled:
                new_cluster[v] = cluster[v]
                continue
            # Group v's residual edges by the neighbour's cluster, keeping
            # the lightest edge per cluster.
            best: Dict[int, Tuple[float, int]] = {}
            for u, w in g.neighbor_items(v):
                c = cluster[u]
                if c is None or c == cluster[v]:
                    continue
                if (u, v) not in edges and (v, u) not in edges:
                    continue
                if c not in best or (w, u) < best[c]:
                    best[c] = (w, u)
            sampled_adjacent = [
                (w, u, c) for c, (w, u) in best.items() if c in sampled
            ]
            if sampled_adjacent:
                w0, u0, c0 = min(sampled_adjacent)
                add(v, u0, w0)
                new_cluster[v] = c0
                for c, (w, u) in best.items():
                    if (w, u, c) < (w0, u0, c0) and c not in sampled:
                        add(v, u, w)
                        _discard_cluster_edges(edges, g, v, cluster, c)
                _discard_cluster_edges(edges, g, v, cluster, c0)
            else:
                for c, (w, u) in best.items():
                    add(v, u, w)
                    _discard_cluster_edges(edges, g, v, cluster, c)
                new_cluster[v] = None
        cluster = new_cluster

    # Phase 2: vertex-cluster joining on the final clustering.
    for v in range(n):
        best: Dict[int, Tuple[float, int]] = {}
        for u, w in g.neighbor_items(v):
            c = cluster[u]
            if c is None or c == cluster[v]:
                continue
            if c not in best or (w, u) < best[c]:
                best[c] = (w, u)
        for c, (w, u) in best.items():
            add(v, u, w)
    return spanner


def _discard_cluster_edges(
    edges: Dict[Tuple[int, int], float],
    g: Graph,
    v: int,
    cluster: List[Optional[int]],
    c: int,
) -> None:
    """Remove all residual edges between ``v`` and cluster ``c``."""
    for u, _ in g.neighbor_items(v):
        if cluster[u] == c:
            edges.pop((u, v), None)
            edges.pop((v, u), None)


def spanner_stretch_ok(g: Graph, spanner: Graph, stretch: float) -> bool:
    """Verify ``d_spanner(u, v) <= stretch * w`` for every edge ``(u,v)``.

    Checking edges suffices: shortest paths decompose into edges, so edge
    stretch bounds path stretch.  The spanner is static here, so the CSR
    kernel is built once up front and every bounded query dispatches to it.
    """
    if use_kernel() and spanner.n > 0:
        from ..graph.csr import csr_graph

        csr_graph(spanner)  # prime the cache; bounded_distance reuses it
    for u, v, w in g.edges():
        if bounded_distance(spanner, u, v, stretch * w) > stretch * w + 1e-9:
            return False
    return True
