"""The Thorup–Zwick (4k-5)-stretch compact routing scheme (SPAA'01, [21]).

The baseline the paper improves on, and the substrate of Theorem 16.  With
``k=2`` it is the classic 3-stretch / ``Õ(sqrt n)``-table scheme and with
``k=3`` the 7-stretch / ``Õ(n^{1/3})``-table scheme of Table 1.

Construction:

* a sampled hierarchy ``V = A_0 ⊇ A_1 ⊇ .. ⊇ A_{k-1}``, ``A_k = ∅``;
  ``A_1`` is drawn with Lemma 4 so every level-0 cluster has ``O(n^{1/k})``
  vertices (this is the −2 of ``4k-3 → 4k-5``), deeper levels subsample
  with probability ``n^{-1/k}``,
* pivots ``p_i(v)`` = closest vertex of ``A_i``, with the standard collapse
  rule ``p_i(v) = p_{i+1}(v)`` when ``d(v, A_i) = d(v, A_{i+1})`` so that
  ``v ∈ C(p_i(v))`` always holds,
* bunches ``B(v) = ∪_i {w ∈ A_i \\ A_{i+1} : d(v,w) < d(v, A_{i+1})}``;
  every ``v`` keeps a tree-routing record of ``T(w)`` for each
  ``w ∈ B(v)`` (equivalently: for every cluster containing ``v``),
* every ``u ∉ A_1`` keeps the tree labels of its own cluster's members.

The label of ``v`` lists ``(p_i(v), tree-label of v in T(p_i(v)))`` for
``i = 0..k-1``.  Routing: deliver inside the own cluster when possible,
otherwise ride ``T(p_i(v))`` for the smallest ``i`` whose tree contains the
current vertex.  Stretch ``4k-5``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


from ..graph.core import Graph
from ..graph.metric import MetricView
from ..graph.trees import RootedTree
from ..routing.model import Deliver, Forward, RouteAction
from ..routing.ports import PortAssignment
from ..routing.tree_routing import TreeRouting, tree_step
from .hierarchy import SampledHierarchy
from ..schemes.base import SchemeBase

__all__ = ["ThorupZwickScheme"]


class ThorupZwickScheme(SchemeBase):
    """The (4k-5)-stretch labeled routing scheme of Thorup and Zwick."""

    def stretch_bound(self) -> float:
        return 4.0 * self.k - 5.0 if self.k >= 2 else 1.0

    def __init__(
        self,
        graph: Graph,
        k: int = 3,
        *,
        seed: int = 0,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
        hierarchy: Optional[SampledHierarchy] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        super().__init__(
            graph, ports=ports, metric=metric, substrate=substrate
        )
        if k < 2:
            raise ValueError(f"Thorup-Zwick needs k >= 2, got {k}")
        self.k = k
        self.name = f"TZ 4k-5 (k={k})"
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else self._sampled_hierarchy(k, seed)
        )

        # Trees T(w) over clusters; members keep records, labels go into
        # destination labels (and the owner's table at level 0).  Each
        # restricted SPT runs on the cluster's induced subgraph through the
        # CSR kernel (work proportional to the cluster, not the graph).
        self._trees: Dict[int, TreeRouting] = {}
        for w, members in self.hierarchy.clusters():
            tree = self._tree_routing(
                w, members,
                lambda w=w, members=members: RootedTree(
                    self.metric.restricted_spt_parents(w, members)
                ),
            )
            self._trees[w] = tree
            for v in members:
                self._tables[v].put("tztree", w, tree.record_of(v))

        # 4k-5 refinement: u ∉ A_1 stores its own cluster's member labels.
        level1 = set(self.hierarchy.level(1))
        for u in graph.vertices():
            if u in level1 or u not in self._trees:
                continue
            tree = self._trees[u]
            for v in self.hierarchy.cluster(u):
                self._tables[u].put("c0label", v, tree.label_of(v))

        for v in graph.vertices():
            entries = []
            for i in range(self.k):
                p = self.hierarchy.pivot(i, v)
                entries.append((p, self._trees[p].label_of(v)))
            self._labels[v] = (v, tuple(entries))

    # ------------------------------------------------------------------
    def shard_categories(self) -> frozenset:
        """Pivot-tree records plus own-cluster member labels."""
        return frozenset({"tztree", "c0label"})

    def routing_params(self) -> dict:
        return {"k": self.k}

    def _restore_routing(self, params: dict) -> None:
        self.k = params["k"]
        self.name = f"TZ 4k-5 (k={self.k})"

    # ------------------------------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        v, entries = dest_label
        if u == v:
            return Deliver()
        table = self.table_of(u)
        if header is None:
            own = table.get("c0label", v)
            if own is not None:
                header = ("tree", u, own)
            else:
                for p, tlabel in entries:
                    if table.has("tztree", p):
                        header = ("tree", p, tlabel)
                        break
                else:
                    raise RuntimeError(
                        f"no pivot tree of {v} contains {u}; "
                        "hierarchy invariant broken"
                    )
        root, tlabel = header[1], header[2]
        record = table.get("tztree", root)
        if record is None:
            raise RuntimeError(f"{u} lacks a record for tree {root}")
        port = tree_step(record, tlabel)
        if port is None:
            if u != v:
                raise RuntimeError(f"tree delivery at {u} but target is {v}")
            return Deliver()
        return Forward(port, header)
