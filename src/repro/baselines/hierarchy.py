"""The sampled landmark hierarchy of Thorup–Zwick compact routing.

``V = A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}``, ``A_k = ∅``.  ``A_1`` is drawn with
Lemma 4 (cluster-bounded sampling) so level-0 clusters have ``O(n^{1/k})``
vertices; each deeper level subsamples the previous one with probability
``n^{-1/k}``.  The chain is resampled until ``A_{k-1}`` is nonempty.

Pivots use the standard *collapse rule*: scanning levels downward,
``p_i(v) = p_{i+1}(v)`` whenever ``d(v, A_i) = d(v, A_{i+1})``.  This
guarantees ``v ∈ C(p_i(v))`` for every level (each effective pivot is
strictly closer than the next level, hence inside the strict cluster
inequality), which the routing labels rely on.

Every vertex ``w`` lives at level ``level_of(w) = max {i : w ∈ A_i}`` and
owns the cluster ``C(w) = {v : d(v, w) < d(v, A_{level_of(w)+1})}`` (with
``d(·, A_k) = ∞``).  Bunches are the transposes: ``w ∈ B(v)`` iff
``v ∈ C(w)``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from ..graph.metric import MetricView
from ..structures.sampling import sample_cluster_bounded

__all__ = ["SampledHierarchy"]

_INF = float("inf")


class SampledHierarchy:
    """Thorup–Zwick ``k``-level landmark hierarchy with pivots and clusters."""

    def __init__(
        self,
        metric: MetricView,
        k: int,
        *,
        seed: int = 0,
        use_lemma4_level1: bool = True,
        max_tries: int = 64,
    ) -> None:
        if k < 2:
            raise ValueError(f"hierarchy needs k >= 2 levels, got {k}")
        self.metric = metric
        self.k = k
        n = metric.n
        p = n ** (-1.0 / k) if n > 1 else 0.5

        levels: Optional[List[List[int]]] = None
        for attempt in range(max_tries):
            rng = random.Random(seed + 104729 * attempt)
            candidate: List[List[int]] = [list(range(n))]
            if use_lemma4_level1:
                a1 = sample_cluster_bounded(
                    metric, n ** (1.0 - 1.0 / k), seed=seed + attempt
                )
            else:
                a1 = [v for v in range(n) if rng.random() < p]
            candidate.append(sorted(a1))
            for _ in range(2, k):
                prev = candidate[-1]
                candidate.append(sorted(w for w in prev if rng.random() < p))
            if candidate[k - 1]:
                levels = candidate
                break
        if levels is None:
            # Tiny graphs: the whp guarantee does not kick in, so force a
            # nonempty chain by promoting one vertex per empty level.  All
            # invariants (subset chain, pivots, clusters) are preserved.
            rng = random.Random(seed)
            levels = [list(range(n))]
            for i in range(1, k):
                prev = levels[-1]
                sampled = sorted(w for w in prev if rng.random() < p)
                if not sampled:
                    sampled = [rng.choice(prev)]
                levels.append(sampled)
        self._levels = levels

        # d(v, A_i) arrays; A_k = empty -> inf.  Level columns come from
        # the metric's row-oriented API: O(|A_i| * n) memory per level,
        # lazy-metric friendly (A_0 = V still costs O(n) rows, but they
        # stream through the row blocks instead of pinning a matrix).
        self._level_dist: List[np.ndarray] = []
        self._level_pivot: List[np.ndarray] = []
        for i in range(k):
            members = levels[i]
            if len(members) == n:
                # A_0 = V: d(v, A_0) = 0 with pivot v (weights are
                # positive), no distance columns needed.
                self._level_dist.append(np.zeros(n))
                self._level_pivot.append(np.arange(n, dtype=np.int64))
                continue
            sub = metric.columns(members)
            arg = np.argmin(sub, axis=1)
            self._level_dist.append(sub[np.arange(n), arg])
            self._level_pivot.append(
                np.asarray(members, dtype=np.int64)[arg]
            )
        self._level_dist.append(np.full(n, _INF))

        # Collapse rule, top-down.
        for i in range(k - 2, -1, -1):
            same = self._level_dist[i] == self._level_dist[i + 1]
            self._level_pivot[i] = np.where(
                same, self._level_pivot[i + 1], self._level_pivot[i]
            )

        # level_of(w): deepest level containing w.
        self._level_of = np.zeros(n, dtype=np.int64)
        for i in range(1, k):
            self._level_of[levels[i]] = i

        # Clusters and bunches via the bounded-row sweep: C(w) only
        # reaches vertices closer than max d(., A_{level+1}), so each
        # row scans that neighbourhood instead of the whole graph (top
        # level owners keep an infinite limit and sweep their component).
        self._clusters: Dict[int, List[int]] = {}
        self._bunches: List[List[int]] = [[] for _ in range(n)]
        level_limits = [
            float(ld.max()) if ld.size else 0.0 for ld in self._level_dist
        ]
        limits = np.array(
            [level_limits[int(self._level_of[w]) + 1] for w in range(n)]
        )
        for w, verts, dists in metric.iter_bounded_rows(limits):
            next_dist = self._level_dist[int(self._level_of[w]) + 1]
            members = verts[dists < next_dist[verts]].tolist()
            if members:
                self._clusters[w] = members
            for v in members:
                self._bunches[v].append(w)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.metric.n

    def level(self, i: int) -> List[int]:
        """``A_i`` (empty for ``i >= k``)."""
        return self._levels[i] if i < self.k else []

    def level_of(self, w: int) -> int:
        """The deepest level containing ``w``."""
        return int(self._level_of[w])

    def pivot(self, i: int, v: int) -> int:
        """``p_i(v)`` after the collapse rule."""
        return int(self._level_pivot[i][v])

    def pivot_distance(self, i: int, v: int) -> float:
        """``d(v, A_i)``."""
        return float(self._level_dist[i][v])

    def cluster(self, w: int) -> List[int]:
        """``C(w)`` sorted by vertex id (may be empty)."""
        return self._clusters.get(w, [])

    def clusters(self):
        """``(w, C(w))`` pairs for every *nonempty* cluster, ``w`` ascending."""
        return self._clusters.items()

    def bunch(self, v: int) -> List[int]:
        """``B(v)`` sorted by vertex id."""
        return self._bunches[v]

    def in_cluster(self, w: int, v: int) -> bool:
        """Whether ``v ∈ C(w)``."""
        next_dist = self._level_dist[self.level_of(w) + 1]
        return bool(self.metric.d(w, v) < next_dist[v])

    def max_bunch_size(self) -> int:
        return max((len(b) for b in self._bunches), default=0)

    def validate(self) -> None:
        """Check the invariants routing relies on (used by tests).

        * monotone levels,
        * ``v ∈ C(p_i(v))`` for every ``v`` and ``i`` (collapse rule),
        * bunch/cluster transposition.
        """
        for i in range(1, self.k):
            if not set(self._levels[i]) <= set(self._levels[i - 1]):
                raise AssertionError(f"A_{i} is not a subset of A_{i-1}")
        for v in range(self.n):
            for i in range(self.k):
                p = self.pivot(i, v)
                if not self.in_cluster(p, v):
                    raise AssertionError(
                        f"vertex {v} outside C(p_{i}(v)={p}); collapse broken"
                    )
        for v in range(self.n):
            for w in self._bunches[v]:
                if v not in self._clusters.get(w, []):
                    raise AssertionError("bunch/cluster transposition broken")
