"""Baselines the paper compares against: TZ routing and distance oracles."""

from .hierarchy import SampledHierarchy
from .pr_oracle import PROracle
from .spanners import baswana_sen_spanner, greedy_spanner, spanner_stretch_ok
from .thorup_zwick import ThorupZwickScheme
from .tz_oracle import TZOracle

__all__ = [
    "SampledHierarchy",
    "PROracle",
    "ThorupZwickScheme",
    "TZOracle",
    "baswana_sen_spanner",
    "greedy_spanner",
    "spanner_stretch_ok",
]
