"""A Pătraşcu–Roditty-style (2,1)-stretch distance oracle ([19]).

The oracle Theorem 10 almost matches.  For unweighted graphs it answers
``query(u,v) <= 2 d(u,v) + 1`` with ``Õ(n^{2/3})`` words per vertex
(``Õ(n^{5/3})`` total).

Per vertex ``u`` (with ``q = n^{1/3}``, ``q̃ = alpha*q*log n``):

* the ball ``B(u, q̃)`` with exact distances,
* distances to *every* landmark of ``A`` (``|A| = Õ(n^{2/3})``; ``A`` is a
  Lemma 4 sample augmented with a hitting set of all balls, so
  ``d(u, p_A(u)) <= r_u + 1``),
* the bunch ``B_A(u)`` with exact distances, and the pivot ``p_A(u)``.

Query — minimum over four candidates::

    min over w in B(u,q̃) ∩ B_A(v) of d(u,w) + d(w,v)      (exact if nonempty)
    min over w in B(v,q̃) ∩ B_A(u) of d(v,w) + d(w,u)
    d(u, p_A(v)) + d(p_A(v), v)
    d(v, p_A(u)) + d(p_A(u), u)

When both intersections are empty, ``r_u + d(v,p_A(v)) <= d`` and
``r_v + d(u,p_A(u)) <= d`` while ``d(·,p_A(·)) <= r_· + 1``; adding the four
inequalities gives ``min(d(u,p_A(u)), d(v,p_A(v))) <= (d+1)/2`` and hence a
``2d+1`` candidate.  When an intersection is nonempty the Theorem 10
argument shows the best common vertex lies on a shortest path, so the
answer is exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..graph.core import Graph
from ..graph.metric import MetricView
from ..structures.balls import BallFamily, ball_size_parameter
from ..structures.bunches import BunchStructure
from ..structures.hitting_set import greedy_hitting_set
from ..structures.sampling import sample_cluster_bounded

__all__ = ["PROracle"]


class PROracle:
    """(2,1)-stretch distance oracle for unweighted graphs."""

    name = "PR oracle (2,1)"

    def __init__(
        self,
        graph: Graph,
        *,
        alpha: float = 1.0,
        q: Optional[int] = None,
        seed: int = 0,
        metric: Optional[MetricView] = None,
    ) -> None:
        if not graph.is_unweighted():
            raise ValueError("the (2,1) oracle is stated for unweighted graphs")
        self.graph = graph
        self.metric = metric if metric is not None else MetricView(graph)
        n = graph.n
        self.q = q if q is not None else max(1, round(n ** (1.0 / 3.0)))
        ell = ball_size_parameter(n, self.q, alpha)
        self.family = BallFamily(self.metric, ell)

        balls = [self.family.ball(u) for u in graph.vertices()]
        sampled = sample_cluster_bounded(self.metric, n / self.q, seed=seed)
        hitting = greedy_hitting_set(balls)
        self.landmarks = sorted(set(sampled) | set(hitting))
        self.bunches = BunchStructure(self.metric, self.landmarks)

        # Per-vertex stores (distances as ints — unweighted).
        self._ball_dist: List[Dict[int, int]] = []
        self._bunch_dist: List[Dict[int, int]] = []
        self._landmark_dist: List[Dict[int, int]] = []
        for u in graph.vertices():
            self._ball_dist.append(
                {w: int(self.metric.d(u, w)) for w in self.family.ball(u)}
            )
            self._bunch_dist.append(
                {w: int(self.metric.d(u, w)) for w in self.bunches.bunch(u)}
            )
            self._landmark_dist.append(
                {a: int(self.metric.d(u, a)) for a in self.landmarks}
            )

    # ------------------------------------------------------------------
    def stretch_bound(self) -> tuple[float, float]:
        return (2.0, 1.0)

    def query(self, u: int, v: int) -> float:
        """A ``2d+1`` distance estimate (exact on ball intersections)."""
        if u == v:
            return 0.0
        best = float("inf")
        bunch_v = self._bunch_dist[v]
        for w, d_uw in self._ball_dist[u].items():
            d_wv = bunch_v.get(w)
            if d_wv is not None:
                best = min(best, d_uw + d_wv)
        bunch_u = self._bunch_dist[u]
        for w, d_vw in self._ball_dist[v].items():
            d_wu = bunch_u.get(w)
            if d_wu is not None:
                best = min(best, d_vw + d_wu)
        p_v = self.bunches.pivot(v)
        best = min(
            best, self._landmark_dist[u][p_v] + self._landmark_dist[v][p_v]
        )
        p_u = self.bunches.pivot(u)
        best = min(
            best, self._landmark_dist[v][p_u] + self._landmark_dist[u][p_u]
        )
        return float(best)

    # ------------------------------------------------------------------
    def space_words(self) -> Dict[str, int]:
        """Total and per-vertex-max storage in words."""
        per_vertex = [
            2 * len(self._ball_dist[u])
            + 2 * len(self._bunch_dist[u])
            + 2 * len(self._landmark_dist[u])
            for u in self.graph.vertices()
        ]
        return {
            "total": sum(per_vertex),
            "max_per_vertex": max(per_vertex, default=0),
        }
