"""Multiprocess source-batching for the CSR kernel — the parallel tier.

Per-source truncated searches (balls, bounded sweeps, SPT rows) are
embarrassingly parallel: each source's result depends only on the CSR
arrays, never on any other source in the batch.  This module fans those
batches out over a spawn-mode process pool while keeping the results
**bit-identical** to the serial kernel:

* The parent publishes the CSR triple (``indptr``/``indices``/
  ``weights``) once into ``multiprocessing.shared_memory`` segments
  (:class:`SharedCSR`) and hands workers a ``(generation, name, dtype,
  shape)`` descriptor per array.  Workers attach zero-copy
  (:class:`_AttachedCSR`) and refuse stale descriptors — an unlinked or
  resized segment raises :class:`StaleSharedSegmentError` instead of
  computing over garbage.
* Each worker runs the *existing* engines (``delta``/``bfs``/``scipy``/
  ``flat``) over a contiguous source chunk and returns compact
  ``(bounds, verts, ds)`` arrays; the parent splices chunks back in
  source order.  Because every engine is per-source deterministic and
  all graph-global tuning constants (bucket width, scipy limit
  estimate) are pure functions of the shared arrays, any chunking of
  the source range reproduces the serial output bit for bit.

Worker-count resolution mirrors the ``REPRO_KERNEL`` dispatch:
``REPRO_PARALLEL=N|auto|off`` is read once per process
(:func:`parallel_workers`), with :func:`reset_parallel_choice` as the
test hook.  ``off``/``0``/``1``/empty disable the tier, ``auto`` uses
``os.cpu_count()`` (disabled on single-core hosts), an explicit ``N >=
2`` forces ``N`` workers, and anything else raises
:class:`ParallelError` — a typo must never silently serialize a build.
Workers themselves always resolve to 0, so nested pools are impossible.

Lifecycle: segments are owned by :class:`SharedCSR` (closed + unlinked
via ``close()``), the pool by the module :class:`_PoolHandle`; both are
torn down by an ``atexit`` hook, and a crashed worker
(``BrokenProcessPool``) triggers exactly one pool respawn + retry of
the unfinished tasks before :class:`ParallelWorkerError` is raised.
"""

from __future__ import annotations

import atexit
import itertools
import os
import signal
import weakref
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, shared_memory
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

__all__ = [
    "ParallelError",
    "StaleSharedSegmentError",
    "ParallelWorkerError",
    "parallel_workers",
    "reset_parallel_choice",
    "pool_respawns",
    "SharedCSR",
    "ParallelEngine",
    "engine_for",
    "PackEncoder",
    "pack_encoder",
]


class ParallelError(RuntimeError):
    """Misconfigured or unusable parallel tier (bad ``REPRO_PARALLEL``)."""


class StaleSharedSegmentError(ParallelError):
    """A worker was handed a descriptor for a dead or resized segment."""


class ParallelWorkerError(ParallelError):
    """The worker pool broke twice for the same batch; giving up."""


# ----------------------------------------------------------------------
# Worker-count resolution (mirrors the REPRO_KERNEL choice)
# ----------------------------------------------------------------------
_PARALLEL_CHOICE: Optional[int] = None
_IN_WORKER = False

#: below this many sources the pool/pickle overhead beats the speedup
_MIN_PARALLEL_SOURCES = 192
#: SPT batches are O(n) work per root, so the floor is much lower
_MIN_PARALLEL_TREES = 16


def _resolve_parallel_choice() -> int:
    raw = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if raw in ("", "off", "no", "false", "0", "1"):
        return 0
    if raw == "auto":
        cores = os.cpu_count() or 1
        return cores if cores >= 2 else 0
    try:
        workers = int(raw)
    except ValueError:
        raise ParallelError(
            f"REPRO_PARALLEL={raw!r}: expected a worker count, "
            "'auto', or 'off'"
        ) from None
    if workers < 0:
        raise ParallelError(
            f"REPRO_PARALLEL={workers} is negative; "
            "use 'off' to disable the parallel tier"
        )
    return workers if workers >= 2 else 0


def parallel_workers() -> int:
    """The resolved worker count (0 = serial), cached per process."""
    global _PARALLEL_CHOICE
    if _IN_WORKER:
        return 0
    if _PARALLEL_CHOICE is None:
        _PARALLEL_CHOICE = _resolve_parallel_choice()
    return _PARALLEL_CHOICE


def reset_parallel_choice() -> None:
    """Drop the cached worker count (test hook; pool survives)."""
    global _PARALLEL_CHOICE
    if not _IN_WORKER:
        _PARALLEL_CHOICE = None


_RESPAWNS = 0


def _note_respawn() -> None:
    global _RESPAWNS
    _RESPAWNS += 1


def pool_respawns() -> int:
    """How many times a broken pool was respawned (test observability)."""
    return _RESPAWNS


# ----------------------------------------------------------------------
# Shared-memory CSR publication (parent side)
# ----------------------------------------------------------------------
_SEGMENT_IDS = itertools.count(1)
_LIVE_SEGMENTS: "weakref.WeakSet[SharedCSR]" = weakref.WeakSet()


class SharedCSR:
    """Parent-side owner of the published CSR shared-memory segments.

    ``close()`` both closes and unlinks every segment; descriptors
    handed out afterwards would be stale, so :meth:`descriptor` raises
    once closed.  Each publication gets a fresh generation id, and the
    segment names embed ``(pid, generation)``, so a worker can never
    accidentally attach an older publication under a reused name.
    """

    def __init__(
        self,
        generation: int,
        n: int,
        segments: List[Tuple[str, Any, str, Tuple[int, ...]]],
    ) -> None:
        self.generation = generation
        self.n = n
        self._segments = segments
        self.closed = False
        _LIVE_SEGMENTS.add(self)

    @classmethod
    def publish(cls, csr: Any) -> "SharedCSR":
        """Copy ``csr``'s CSR triple into fresh shared segments."""
        generation = next(_SEGMENT_IDS)
        arrays = (
            ("indptr", np.ascontiguousarray(csr.indptr)),
            ("indices", np.ascontiguousarray(csr.indices)),
            ("weights", np.ascontiguousarray(csr.weights)),
        )
        segments: List[Tuple[str, Any, str, Tuple[int, ...]]] = []
        try:
            for label, arr in arrays:
                name = f"repro-{os.getpid()}-{generation}-{label}"
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, arr.nbytes)
                )
                segments.append((label, shm, str(arr.dtype), arr.shape))
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[:] = arr
                del view
        except BaseException:
            for _, shm, _, _ in segments:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
            raise
        return cls(generation, csr.n, segments)

    def descriptor(
        self,
    ) -> Tuple[int, int, Tuple[Tuple[str, str, str, Tuple[int, ...]], ...]]:
        """The picklable attach ticket: ``(generation, n, per-array specs)``."""
        if self.closed:
            raise StaleSharedSegmentError(
                f"shared CSR generation {self.generation} is closed; "
                "republish before dispatching work"
            )
        return (
            self.generation,
            self.n,
            tuple(
                (label, shm.name, dtype, tuple(shape))
                for label, shm, dtype, shape in self._segments
            ),
        )

    def close(self) -> None:
        """Close + unlink every segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        _LIVE_SEGMENTS.discard(self)
        for _, shm, _, _ in self._segments:
            try:
                shm.close()
            except BufferError:  # a stray view still maps the buffer
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# Worker side: attach + task functions
# ----------------------------------------------------------------------
class _AttachedCSR:
    """Worker-side zero-copy attachment of one published generation."""

    def __init__(self, descriptor: Tuple[Any, ...]) -> None:
        generation, n, segments = descriptor
        self.generation = generation
        self.csr: Any = None
        self._shms: List[Any] = []
        arrays: Dict[str, np.ndarray] = {}
        try:
            for label, name, dtype, shape in segments:
                try:
                    shm = shared_memory.SharedMemory(name=name)
                except FileNotFoundError as exc:
                    raise StaleSharedSegmentError(
                        f"shared CSR segment {name!r} (generation "
                        f"{generation}) no longer exists"
                    ) from exc
                self._shms.append(shm)
                # Python 3.11's SharedMemory has no track=False, so this
                # attach re-registers the name with the resource tracker
                # (bpo-38119).  That is benign here: spawn-mode workers
                # share the parent's tracker process, whose cache is a
                # set — duplicate registrations collapse, and the
                # parent's unlink() clears the single entry.  Explicitly
                # unregistering instead would race other workers AND
                # strip the parent's crash-cleanup registration.
                dt = np.dtype(dtype)
                need = dt.itemsize * int(np.prod(shape, dtype=np.int64))
                if shm.size < need:
                    raise StaleSharedSegmentError(
                        f"shared CSR segment {name!r} holds {shm.size} "
                        f"bytes but generation {generation} promises "
                        f"{need}; refusing the stale attach"
                    )
                arr: np.ndarray = np.ndarray(shape, dtype=dt, buffer=shm.buf)
                arr.flags.writeable = False
                arrays[label] = arr
        except BaseException:
            del arrays
            self.close()
            raise
        from .csr import CSRGraph

        self.csr = CSRGraph(
            n, arrays["indptr"], arrays["indices"], arrays["weights"]
        )

    def close(self) -> None:
        # Drop the numpy views before unmapping, else close() raises
        # BufferError against the exported buffers.
        self.csr = None
        shms, self._shms = self._shms, []
        for shm in shms:
            try:
                shm.close()
            except BufferError:  # a view is still alive in a frame
                pass


_WORKER_CSR: Optional[_AttachedCSR] = None


def _worker_init() -> None:
    global _IN_WORKER, _PARALLEL_CHOICE
    _IN_WORKER = True
    _PARALLEL_CHOICE = 0  # a worker never spawns a nested pool


def _attached_csr(descriptor: Tuple[Any, ...]) -> Any:
    """The cached attachment for this generation (stale ones closed)."""
    global _WORKER_CSR
    if _WORKER_CSR is not None and _WORKER_CSR.generation == descriptor[0]:
        return _WORKER_CSR.csr
    if _WORKER_CSR is not None:
        _WORKER_CSR.close()
        _WORKER_CSR = None
    _WORKER_CSR = _AttachedCSR(descriptor)
    return _WORKER_CSR.csr


def _task_ball_chunk(
    descriptor: Tuple[Any, ...],
    lo: int,
    hi: int,
    ell: int,
    tol: float,
    with_radii: bool,
    engine: str,
    chunk_bytes: int,
    batch_bytes: int,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    csr = _attached_csr(descriptor)
    return csr._ball_chunk_arrays(
        lo,
        hi,
        ell,
        tol=tol,
        with_radii=with_radii,
        engine=engine,
        chunk_bytes=chunk_bytes,
        batch_bytes=batch_bytes,
    )


def _task_bounded_chunk(
    descriptor: Tuple[Any, ...],
    sources: List[int],
    limits: np.ndarray,
    delta: Optional[float],
    batch_bytes: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    csr = _attached_csr(descriptor)
    return csr._bounded_chunk_arrays(
        sources, limits, delta=delta, batch_bytes=batch_bytes
    )


def _task_pred_rows(
    descriptor: Tuple[Any, ...], roots: List[int]
) -> np.ndarray:
    csr = _attached_csr(descriptor)
    return csr._spt_pred_rows(roots)


def _task_encode_pack(
    entries: List[Tuple[int, bytes]], checksums: bool
) -> bytes:
    from ..routing.shard_codec import encode_pack

    return encode_pack(entries, checksums=checksums)


def _task_pid() -> int:
    """Test hook: the worker's pid (so a test can SIGKILL it)."""
    return os.getpid()


def _task_kill_self() -> None:
    """Test hook: die mid-task, exactly like an OOM-killed worker."""
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class _PoolHandle:
    """Owner of the lazily-spawned process pool (``close()`` = shutdown).

    Spawn mode, not fork: workers must re-import cleanly (fork would
    duplicate open sockets, scipy state, and the parent's own pool).
    """

    def __init__(self) -> None:
        self._executor: Optional[ProcessPoolExecutor] = None
        self._workers = 0

    def executor(self, workers: int) -> ProcessPoolExecutor:
        if self._executor is not None and self._workers != workers:
            self.discard()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=get_context("spawn"),
                initializer=_worker_init,
            )
            self._workers = workers
        return self._executor

    def discard(self) -> None:
        """Drop a (likely broken) pool without waiting on dead workers."""
        ex, self._executor = self._executor, None
        self._workers = 0
        if ex is not None:
            ex.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        ex, self._executor = self._executor, None
        self._workers = 0
        if ex is not None:
            ex.shutdown(wait=True, cancel_futures=True)


_POOL = _PoolHandle()


def run_tasks(
    fn: Callable[..., Any], tasks: Sequence[Tuple[Any, ...]], workers: int
) -> List[Any]:
    """Run ``fn(*task)`` for every task, results in task order.

    A ``BrokenProcessPool`` (worker killed mid-batch) discards the pool,
    respawns once, and re-runs only the unfinished tasks — results that
    completed before the crash are kept, and determinism makes the
    retry's outputs identical to what the dead worker would have
    returned.  A second crash raises :class:`ParallelWorkerError`.
    """
    results: List[Any] = [_UNSET] * len(tasks)
    for attempt in range(2):
        pend = [i for i, r in enumerate(results) if r is _UNSET]
        if not pend:
            break
        try:
            ex = _POOL.executor(workers)
            futures = {i: ex.submit(fn, *tasks[i]) for i in pend}
            for i in pend:
                results[i] = futures[i].result()
        except BrokenProcessPool as exc:
            _POOL.discard()
            _note_respawn()
            if attempt:
                raise ParallelWorkerError(
                    "parallel worker pool broke twice running "
                    f"{getattr(fn, '__name__', fn)!s}; giving up"
                ) from exc
    return results


def iter_tasks(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    workers: int,
    *,
    window: Optional[int] = None,
) -> Iterator[Any]:
    """Yield ``fn(*task)`` results in task order, windowed submission.

    Keeps at most ``window`` tasks in flight so generators over huge
    sweeps (bounded rows) never materialize every chunk result at once.
    Same one-respawn crash policy as :func:`run_tasks`.
    """
    if window is None:
        window = 2 * workers
    next_yield = 0
    for attempt in range(2):
        try:
            ex = _POOL.executor(workers)
            futures: "deque[Any]" = deque()
            next_submit = next_yield
            while next_yield < len(tasks):
                while next_submit < len(tasks) and len(futures) < window:
                    futures.append(ex.submit(fn, *tasks[next_submit]))
                    next_submit += 1
                res = futures.popleft().result()
                next_yield += 1
                yield res
            return
        except BrokenProcessPool as exc:
            _POOL.discard()
            _note_respawn()
            if attempt:
                raise ParallelWorkerError(
                    "parallel worker pool broke twice running "
                    f"{getattr(fn, '__name__', fn)!s}; giving up"
                ) from exc


_UNSET = object()


# ----------------------------------------------------------------------
# The engine facade used by CSRGraph
# ----------------------------------------------------------------------
class ParallelEngine:
    """One published CSR generation + the chunk dispatch over it."""

    def __init__(self, csr: Any, workers: int) -> None:
        self.workers = workers
        self.closed = False
        self._shared = SharedCSR.publish(csr)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._shared.close()

    def _chunks(self, count: int) -> List[Tuple[int, int]]:
        # ~4 chunks per worker amortizes stragglers without drowning the
        # result pipe; tiny chunks are not worth a pickle round-trip.
        size = max(64, -(-count // (self.workers * 4)))
        return [
            (lo, min(lo + size, count)) for lo in range(0, count, size)
        ]

    def ball_arrays(
        self,
        n: int,
        ell: int,
        *,
        tol: float,
        with_radii: bool,
        engine: str,
        chunk_bytes: int,
        batch_bytes: int,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        desc = self._shared.descriptor()
        tasks = [
            (desc, lo, hi, ell, tol, with_radii, engine, chunk_bytes,
             batch_bytes)
            for lo, hi in self._chunks(n)
        ]
        parts = run_tasks(_task_ball_chunk, tasks, self.workers)
        return _splice(parts, with_radii)

    def bounded_chunks(
        self,
        sources: Sequence[int],
        limits: np.ndarray,
        delta: Optional[float],
        batch_bytes: int,
    ) -> Iterator[Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], List[int]]]:
        desc = self._shared.descriptor()
        chunks = self._chunks(len(sources))
        lim = np.asarray(limits, dtype=np.float64)
        tasks = [
            (desc, list(sources[lo:hi]), lim[lo:hi], delta, batch_bytes)
            for lo, hi in chunks
        ]
        results = iter_tasks(_task_bounded_chunk, tasks, self.workers)
        for result, (lo, hi) in zip(results, chunks):
            yield result, list(sources[lo:hi])

    def pred_rows(self, roots: Sequence[int]) -> List[np.ndarray]:
        desc = self._shared.descriptor()
        tasks = [
            (desc, list(roots[lo:hi]))
            for lo, hi in self._chunks(len(roots))
        ]
        return run_tasks(_task_pred_rows, tasks, self.workers)


def _splice(
    parts: Sequence[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]],
    with_radii: bool,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Rejoin per-chunk ``(bounds, verts, radii)`` in source order."""
    sizes = np.concatenate([np.diff(p[0]) for p in parts])
    bounds = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    verts = np.concatenate([p[1] for p in parts])
    radii = (
        np.concatenate([p[2] for p in parts]) if with_radii else None
    )
    return bounds, verts, radii


def engine_for(
    csr: Any, count: int, *, floor: Optional[int] = None
) -> Optional[ParallelEngine]:
    """The parallel engine for ``csr``, or ``None`` to stay serial.

    Returns ``None`` when the tier is off, inside a worker, or the
    batch (``count`` sources) is below the engagement floor.  The
    engine — and with it the published segments — is cached on the
    ``CSRGraph`` instance and torn down when the graph is collected.
    """
    if floor is None:
        floor = _MIN_PARALLEL_SOURCES
    workers = parallel_workers()
    if workers < 2 or count < floor:
        return None
    engine = csr._parallel
    if (
        engine is not None
        and engine.workers == workers
        and not engine.closed
    ):
        return engine
    if engine is not None:
        engine.close()
    engine = ParallelEngine(csr, workers)
    csr._parallel = engine
    weakref.finalize(csr, engine._shared.close)
    return engine


# ----------------------------------------------------------------------
# Pipelined pack-group encoding (the serving shard-write path)
# ----------------------------------------------------------------------
class PackEncoder:
    """FIFO pool encoding of pack groups, byte-identical to serial.

    ``encode_pack`` is a pure function of ``(entries, checksums)``, so
    farming groups out changes only wall-clock, never bytes.  The queue
    window bounds how many groups' entries are held in memory; a broken
    pool falls back to in-parent encoding for the affected group and
    respawns for the next, so a crash costs throughput, not output.
    """

    def __init__(self, workers: int, *, window: Optional[int] = None) -> None:
        self.workers = workers
        self._window = window if window is not None else 2 * workers
        self._queue: "deque[Tuple[int, Any, Any, bool]]" = deque()

    def submit(
        self, group: int, entries: List[Tuple[int, bytes]], checksums: bool
    ) -> None:
        try:
            ex = _POOL.executor(self.workers)
            fut: Any = ex.submit(_task_encode_pack, entries, checksums)
        except BrokenProcessPool:
            _POOL.discard()
            _note_respawn()
            fut = None
        self._queue.append((group, fut, entries, checksums))

    def ready(self) -> Iterator[Tuple[int, bytes]]:
        """``(group, pack)`` for every group that can pop without waiting
        (plus blocking pops once the window overflows)."""
        while self._queue and (
            len(self._queue) > self._window
            or self._queue[0][1] is None
            or self._queue[0][1].done()
        ):
            yield self._pop()

    def drain(self) -> Iterator[Tuple[int, bytes]]:
        """Pop every remaining group, in submission order."""
        while self._queue:
            yield self._pop()

    def _pop(self) -> Tuple[int, bytes]:
        group, fut, entries, checksums = self._queue.popleft()
        if fut is not None:
            try:
                return group, fut.result()
            except BrokenProcessPool:
                _POOL.discard()
                _note_respawn()
        # In-parent fallback: same pure function, same bytes.
        from ..routing.shard_codec import encode_pack

        return group, encode_pack(entries, checksums=checksums)

    def close(self) -> None:
        self._queue.clear()


def pack_encoder() -> Optional[PackEncoder]:
    """A :class:`PackEncoder` when the tier is on, else ``None``."""
    workers = parallel_workers()
    if workers < 2:
        return None
    return PackEncoder(workers)


def _shutdown() -> None:
    _POOL.close()
    for seg in list(_LIVE_SEGMENTS):
        seg.close()


atexit.register(_shutdown)
