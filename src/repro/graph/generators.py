"""Seeded graph generators for tests, examples and benchmarks.

The paper has no dataset: its results are worst-case bounds over all
undirected graphs.  For the empirical reproduction we exercise the schemes on
standard synthetic families that stress different regimes:

* **Erdős–Rényi** ``G(n, p)`` — the classical random substrate; balls grow
  fast, clusters are small, the "no intersection" routing branches dominate.
* **Grid / torus** — large diameter, slow ball growth; stresses the waypoint
  sequences of Lemma 7/8 (long shortest paths, many subsequences).
* **Ring with chords** — small-world topology with controllable diameter.
* **Preferential attachment** — heavy-tailed degrees; stresses the fixed-port
  model (high-degree hubs) and cluster-size bounding (Lemma 4).
* **Random geometric** — the paper's weighted setting with metric-like
  weights and meaningful normalized diameter ``D``.
* **Trees / caterpillars** — the tree-routing substrate's home turf.

Every generator takes an explicit ``seed`` and is deterministic.  Generators
always return *connected* graphs (a connecting pass is applied when random
sampling leaves isolated pieces) because compact routing is defined on
connected graphs.
"""

from __future__ import annotations

import math
import random

from .core import Graph

__all__ = [
    "erdos_renyi",
    "random_sparse",
    "grid",
    "torus",
    "ring_with_chords",
    "preferential_attachment",
    "random_geometric",
    "random_tree",
    "caterpillar",
    "barbell",
    "complete_binary_tree",
    "path",
    "cycle",
    "complete",
    "star",
    "with_random_weights",
    "connect_components",
]


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def connect_components(g: Graph, seed: int = 0, weight: float = 1.0) -> Graph:
    """Add minimum-count random edges so that ``g`` becomes connected.

    One representative vertex is drawn from each component and consecutive
    representatives are linked.  Mutates and returns ``g``.
    """
    rng = _rng(seed)
    components = g.connected_components()
    if len(components) <= 1:
        return g
    reps = [rng.choice(comp) for comp in components]
    for a, b in zip(reps, reps[1:]):
        if not g.has_edge(a, b):
            g.add_edge(a, b, weight)
    return g


def erdos_renyi(n: int, p: float, seed: int = 0, *, connected: bool = True) -> Graph:
    """Erdős–Rényi ``G(n, p)``; optionally patched to be connected."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0,1], got {p}")
    rng = _rng(seed)
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    if connected:
        connect_components(g, seed=seed + 1)
    return g


def random_sparse(
    n: int, m: int, seed: int = 0, *, connected: bool = True
) -> Graph:
    """Uniform random simple graph with ``min(m, n(n-1)/2)`` edges.

    The large-``n`` companion to :func:`erdos_renyi`: pairs are
    rejection-sampled in ``O(m)`` expected time instead of scanning all
    ``O(n^2)`` pairs, which is what makes ``n = 10^5 .. 10^6``
    benchmark graphs (``m ~ 4n``) constructible at all.  Intended for
    sparse regimes — near-complete ``m`` makes rejection sampling slow;
    use :func:`erdos_renyi` or :func:`complete` there.
    """
    if n < 1:
        raise ValueError(f"graph needs at least one vertex, got n={n}")
    limit = n * (n - 1) // 2
    m = min(int(m), limit)
    rng = _rng(seed)
    g = Graph(n)
    seen = set()
    while len(seen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        key = u * n + v
        if key in seen:
            continue
        seen.add(key)
        g.add_edge(u, v)
    if connected:
        connect_components(g, seed=seed + 1)
    return g


def grid(rows: int, cols: int) -> Graph:
    """``rows x cols`` grid graph; vertex ``(r, c)`` has id ``r*cols + c``."""
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1)
            if r + 1 < rows:
                g.add_edge(u, u + cols)
    return g


def torus(rows: int, cols: int) -> Graph:
    """Grid with wrap-around edges in both dimensions."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs at least 3 rows and 3 cols")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            if not g.has_edge(u, right):
                g.add_edge(u, right)
            if not g.has_edge(u, down):
                g.add_edge(u, down)
    return g


def ring_with_chords(n: int, chords: int, seed: int = 0) -> Graph:
    """Cycle on ``n`` vertices plus ``chords`` random non-duplicate chords."""
    if n < 3:
        raise ValueError("ring needs at least 3 vertices")
    rng = _rng(seed)
    g = cycle(n)
    added = 0
    attempts = 0
    max_attempts = 50 * max(1, chords)
    while added < chords and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        added += 1
    return g


def preferential_attachment(n: int, m_attach: int, seed: int = 0) -> Graph:
    """Barabási–Albert-style graph: each new vertex attaches to ``m_attach``
    existing vertices sampled proportionally to degree."""
    if m_attach < 1:
        raise ValueError("m_attach must be >= 1")
    if n <= m_attach:
        return complete(max(n, 1))
    rng = _rng(seed)
    g = Graph(n)
    seed_clique = min(m_attach + 1, n)
    for a in range(seed_clique):
        for b in range(a + 1, seed_clique):
            g.add_edge(a, b)
    targets = []
    for u in range(seed_clique):
        targets.extend([u] * g.degree(u))
    for u in range(seed_clique, n):
        chosen = set()
        while len(chosen) < m_attach:
            chosen.add(rng.choice(targets))
        for v in chosen:
            g.add_edge(u, v)
            targets.append(v)
        targets.extend([u] * m_attach)
    return g


def random_geometric(
    n: int, radius: float, seed: int = 0, *, connected: bool = True
) -> Graph:
    """Random geometric graph on the unit square with Euclidean edge weights.

    Vertices are uniform points; vertices closer than ``radius`` are joined by
    an edge weighted by their Euclidean distance (a natural weighted,
    metric-like family with meaningful normalized diameter ``D``).
    """
    rng = _rng(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    g = Graph(n)
    for u in range(n):
        xu, yu = points[u]
        for v in range(u + 1, n):
            xv, yv = points[v]
            d = math.hypot(xu - xv, yu - yv)
            if d <= radius and d > 0:
                g.add_edge(u, v, d)
    if connected:
        # Use the average edge weight for patch edges so weights stay natural.
        patch_w = radius / 2 if g.m == 0 else (
            sum(w for _, _, w in g.edges()) / g.m
        )
        connect_components(g, seed=seed + 1, weight=max(patch_w, 1e-9))
    return g


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform random labelled tree via a random Prüfer-like attachment."""
    if n <= 0:
        raise ValueError("tree needs at least one vertex")
    rng = _rng(seed)
    g = Graph(n)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        u = order[i]
        v = order[rng.randrange(i)]
        g.add_edge(u, v)
    return g


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """Caterpillar tree: a path of ``spine`` vertices, each with pendant legs."""
    if spine < 1:
        raise ValueError("spine must have at least one vertex")
    n = spine + spine * legs_per_vertex
    g = Graph(n)
    for i in range(spine - 1):
        g.add_edge(i, i + 1)
    leg = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(i, leg)
            leg += 1
    return g


def path(n: int) -> Graph:
    """Path graph on ``n`` vertices."""
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def cycle(n: int) -> Graph:
    """Cycle graph on ``n`` vertices."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    g = path(n)
    g.add_edge(n - 1, 0)
    return g


def complete(n: int) -> Graph:
    """Complete graph on ``n`` vertices."""
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def star(n: int) -> Graph:
    """Star: vertex 0 joined to all others."""
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(0, v)
    return g


def with_random_weights(
    g: Graph, seed: int = 0, low: float = 1.0, high: float = 10.0
) -> Graph:
    """Return a copy of ``g`` with i.i.d. uniform weights in ``[low, high]``."""
    if low <= 0 or high < low:
        raise ValueError(f"invalid weight range [{low}, {high}]")
    rng = _rng(seed)
    out = Graph(g.n)
    for u, v, _ in g.edges():
        out.add_edge(u, v, rng.uniform(low, high))
    return out


def barbell(clique_size: int, path_length: int) -> Graph:
    """Two cliques joined by a path — the classic cluster-stress shape.

    Vertices ``0..clique_size-1`` form the first clique,
    the next ``path_length`` vertices the connecting path, and the last
    ``clique_size`` the second clique.  Landmark samples concentrate in
    the cliques, so routing across the bar exercises the far-case branches
    of every scheme.
    """
    if clique_size < 2:
        raise ValueError("cliques need at least 2 vertices")
    n = 2 * clique_size + path_length
    g = Graph(n)
    for a in range(clique_size):
        for b in range(a + 1, clique_size):
            g.add_edge(a, b)
    offset = clique_size + path_length
    for a in range(clique_size):
        for b in range(a + 1, clique_size):
            g.add_edge(offset + a, offset + b)
    chain = [clique_size - 1] + list(
        range(clique_size, clique_size + path_length)
    ) + [offset]
    for a, b in zip(chain, chain[1:]):
        g.add_edge(a, b)
    return g


def complete_binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (``2^{depth+1}-1`` vertices).

    Heavy-path decompositions and tree labels hit their logarithmic worst
    case here, making it the natural stress input for Lemma 3.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(v, (v - 1) // 2)
    return g
