"""Graph substrate: representation, generators, shortest paths, metric view.

Shortest-path work dispatches through :mod:`repro.graph.shortest_paths` to
the flat-array CSR kernel (:mod:`repro.graph.csr`) when numpy is present,
with the pure-Python implementations as the differential-test fallback.
"""

from .core import Graph, GraphError
# numpy is a hard dependency of the metric import above, so the CSR
# kernel import needs no guard here; REPRO_KERNEL=pure still bypasses it
# at dispatch time.
from .csr import CSRGraph, csr_graph
from .metric import MetricView
from .trees import RootedTree

__all__ = [
    "Graph",
    "GraphError",
    "MetricView",
    "RootedTree",
    "CSRGraph",
    "csr_graph",
]
