"""Graph substrate: representation, generators, shortest paths, metric view."""

from .core import Graph, GraphError
from .metric import MetricView
from .trees import RootedTree

__all__ = ["Graph", "GraphError", "MetricView", "RootedTree"]
