"""Flat-array CSR shortest-path kernel — the preprocessing hot path.

Every scheme in this reproduction spends nearly all of its preprocessing
time running (truncated) Dijkstra over the list-of-dicts :class:`Graph`.
This module provides an immutable, numpy-backed CSR mirror of a graph —
:class:`CSRGraph` — plus flat-array implementations of the shortest-path
primitives, and a batched :meth:`CSRGraph.all_balls` that computes the
paper's vicinities ``B(u, ell)`` for *every* vertex at once.

Kernel / fallback dispatch
--------------------------
Callers do not import this module directly; they go through the dispatch
functions in :mod:`repro.graph.shortest_paths` (``dijkstra``,
``truncated_dijkstra``, ``multi_source_distances``, ``all_balls``,
``bounded_distance``).  The dispatch picks this kernel when numpy imports
cleanly and ``REPRO_KERNEL=pure`` is not set, and otherwise falls back to
the pure-Python implementations, which stay in the tree as the
differential-test reference.  Inside the kernel, :meth:`all_balls` and
:meth:`rows` additionally use scipy's C ``csgraph.dijkstra`` (chunked over
sources so peak memory stays ``O(chunk * n)``, never ``O(n^2)``) when scipy
is importable.

The CSR arrays are built once per :class:`Graph` *version* and cached on
the graph instance (:func:`csr_graph`); mutating the graph invalidates the
cache.  Per-source scratch state (tentative-distance and settled buffers)
is preallocated once per :class:`CSRGraph` and reset with a generation
counter instead of being reallocated for every source, which is what makes
the batched ball sweep cheap.

Tie-breaking invariant
----------------------
All kernels preserve the paper's Section 2 total order *exactly*: balls are
``(distance, id)``-ordered prefixes (heap keys are ``(dist, vertex)``
tuples), multi-source ties resolve toward the smaller source id (the
lexicographic ``p_A(v)`` rule), and Dijkstra parents tie toward the
smallest predecessor id.  Distances are bitwise identical to the
pure-Python path: both accumulate the same float64 edge weights along the
same shortest paths, and the final distance of a vertex is the minimum
over the same candidate set regardless of relaxation order.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core import Graph

try:  # scipy is optional; the kernel degrades gracefully without it.
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False

__all__ = ["CSRGraph", "csr_graph", "cached_csr_graph"]

_INF = float("inf")

#: default cap on the scipy row-chunk buffer (bytes); keeps the batched
#: ball sweep and lazy row computations at O(chunk * n) peak memory.
_CHUNK_BYTES = 1 << 22


def csr_graph(g: Graph) -> "CSRGraph":
    """The CSR mirror of ``g``, built once per graph version and cached."""
    cached = g._csr_cache
    if cached is not None and cached[0] == g._version:
        return cached[1]
    kernel = CSRGraph.from_graph(g)
    g._csr_cache = (g._version, kernel)
    return kernel


def cached_csr_graph(g: Graph) -> Optional["CSRGraph"]:
    """A *current* cached CSR mirror of ``g``, or ``None`` — never builds.

    Mutation-heavy callers (e.g. the greedy spanner, which queries the
    spanner while growing it) use this so each query does not pay an
    O(n + m) rebuild; they fall back to the pure path instead.
    """
    cached = g._csr_cache
    if cached is not None and cached[0] == g._version:
        return cached[1]
    return None


class CSRGraph:
    """Immutable flat-array (CSR) view of an undirected weighted graph.

    ``indptr``/``indices``/``weights`` are the usual CSR triple with both
    edge directions materialized; per-row neighbour order is the graph's
    deterministic insertion order.  ``_adj`` is the same adjacency as plain
    Python ``(neighbour, weight)`` tuple lists — CPython iterates those
    much faster than numpy scalars, so the heap kernels run on it while the
    numpy arrays serve construction, scipy interop and vectorized
    postprocessing.
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "indices",
        "weights",
        "_adj",
        "_scipy_mat",
        "_gen",
        "_best",
        "_best_stamp",
        "_settled_stamp",
        "_np_stamp",
        "_degrees",
        "_unweighted",
    )

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        self.n = int(n)
        self.m = int(len(indices) // 2)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._adj: Optional[List[List[Tuple[int, float]]]] = None
        self._scipy_mat = None
        # Generation-stamped scratch buffers: a slot is valid only when its
        # stamp equals the current generation, so "resetting" all n slots
        # between sources is a single integer increment.
        self._gen = 0
        self._best = [0.0] * self.n
        self._best_stamp = [0] * self.n
        self._settled_stamp = [0] * self.n
        self._np_stamp = np.zeros(self.n, dtype=np.int64)
        self._degrees = np.diff(indptr)
        self._unweighted: Optional[bool] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        """Build the CSR arrays from a :class:`Graph` (insertion order kept)."""
        n = g.n
        nnz = 2 * g.m
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(nnz, dtype=np.int64)
        weights = np.empty(nnz, dtype=np.float64)
        pos = 0
        for u in range(n):
            adj_u = g._adj[u]
            indptr[u + 1] = indptr[u] + len(adj_u)
            for v, w in adj_u.items():
                indices[pos] = v
                weights[pos] = w
                pos += 1
        return cls(n, indptr, indices, weights)

    def _flat_adj(self) -> List[List[Tuple[int, float]]]:
        if self._adj is None:
            idx = self.indices.tolist()
            wts = self.weights.tolist()
            ptr = self.indptr.tolist()
            self._adj = [
                list(zip(idx[ptr[u] : ptr[u + 1]], wts[ptr[u] : ptr[u + 1]]))
                for u in range(self.n)
            ]
        return self._adj

    def _scipy_matrix(self):
        """The scipy CSR adjacency (copied arrays so scipy cannot reorder ours)."""
        if not _HAVE_SCIPY:
            return None
        if self._scipy_mat is None:
            self._scipy_mat = _scipy_csr_matrix(
                (
                    self.weights.copy(),
                    self.indices.copy(),
                    self.indptr.copy(),
                ),
                shape=(self.n, self.n),
            )
        return self._scipy_mat

    # ------------------------------------------------------------------
    # Single-source kernels
    # ------------------------------------------------------------------
    def dijkstra(self, source: int) -> Tuple[List[float], List[Optional[int]]]:
        """Flat-array single-source Dijkstra.

        Matches :func:`repro.graph.shortest_paths.dijkstra_py` exactly,
        including the deterministic parent rule (ties toward the smallest
        predecessor id).
        """
        adj = self._flat_adj()
        n = self.n
        dist: List[float] = [_INF] * n
        parent: List[Optional[int]] = [None] * n
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        done = bytearray(n)
        while heap:
            d, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = 1
            for v, w in adj[u]:
                nd = d + w
                dv = dist[v]
                if nd < dv:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
                elif nd == dv:
                    pv = parent[v]
                    if pv is not None and u < pv:
                        parent[v] = u
                        heapq.heappush(heap, (nd, v))
        return dist, parent

    def truncated_dijkstra(
        self, source: int, ell: int
    ) -> Tuple[List[int], Dict[int, float]]:
        """The ``ell`` closest vertices of ``source`` in ``(dist, id)`` order.

        Scratch buffers are generation-stamped, so back-to-back calls (the
        all-balls sweep) do no per-source O(n) reallocation.
        """
        if ell <= 0:
            return [], {}
        adj = self._flat_adj()
        self._gen += 1
        gen = self._gen
        best = self._best
        best_stamp = self._best_stamp
        ball: List[int] = []
        dist: Dict[int, float] = {}
        best[source] = 0.0
        best_stamp[source] = gen
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap and len(ball) < ell:
            d, u = heapq.heappop(heap)
            if u in dist:
                continue
            if best_stamp[u] == gen and d > best[u]:
                continue
            dist[u] = d
            ball.append(u)
            for v, w in adj[u]:
                nd = d + w
                if v not in dist and (
                    best_stamp[v] != gen or nd < best[v]
                ):
                    best[v] = nd
                    best_stamp[v] = gen
                    heapq.heappush(heap, (nd, v))
        return ball, dist

    def ball_with_radius(
        self, source: int, ell: int, tol: float = 0.0
    ) -> Tuple[List[int], Dict[int, float], float]:
        """``B(source, ell)`` plus the paper's radius ``r_u(ell)``.

        After the ball fills, the search keeps popping: if any *new* vertex
        settles within ``tol`` of the boundary distance, the boundary level
        is only partially contained and the radius drops to the previous
        level — identical semantics to
        :meth:`repro.graph.metric.MetricView.ball_radius`.
        """
        if ell <= 0:
            raise ValueError("empty ball has no radius")
        adj = self._flat_adj()
        self._gen += 1
        gen = self._gen
        best = self._best
        best_stamp = self._best_stamp
        ball: List[int] = []
        dist: Dict[int, float] = {}
        best[source] = 0.0
        best_stamp[source] = gen
        heap: List[Tuple[float, int]] = [(0.0, source)]
        dmax = 0.0
        boundary_complete = True
        while heap:
            d, u = heapq.heappop(heap)
            if u in dist:
                continue
            if best_stamp[u] == gen and d > best[u]:
                continue
            if len(ball) >= ell:
                # First excess settle decides the boundary level.
                boundary_complete = d > dmax + tol
                break
            dist[u] = d
            ball.append(u)
            dmax = d
            for v, w in adj[u]:
                nd = d + w
                if v not in dist and (
                    best_stamp[v] != gen or nd < best[v]
                ):
                    best[v] = nd
                    best_stamp[v] = gen
                    heapq.heappush(heap, (nd, v))
        if boundary_complete:
            radius = dmax
        else:
            inner = [d for d in dist.values() if d < dmax - tol]
            radius = max(inner) if inner else 0.0
        return ball, dist, radius

    def multi_source_distances(
        self, sources: Sequence[int]
    ) -> Tuple[List[float], List[int]]:
        """Nearest-source distances; ties toward the smaller source id."""
        adj = self._flat_adj()
        n = self.n
        dist: List[float] = [_INF] * n
        nearest: List[int] = [-1] * n
        heap: List[Tuple[float, int, int]] = []
        for s in sorted(set(sources)):
            dist[s] = 0.0
            nearest[s] = s
            heap.append((0.0, s, s))
        heapq.heapify(heap)
        while heap:
            d, src, u = heapq.heappop(heap)
            if (d, src) > (dist[u], nearest[u]):
                continue
            for v, w in adj[u]:
                nd = d + w
                dv = dist[v]
                if nd < dv or (nd == dv and src < nearest[v]):
                    dist[v] = nd
                    nearest[v] = src
                    heapq.heappush(heap, (nd, src, v))
        return dist, nearest

    def bounded_distance(
        self, source: int, target: int, limit: float
    ) -> float:
        """Distance ``d(source, target)`` if at most ``limit``, else ``inf``."""
        adj = self._flat_adj()
        self._gen += 1
        gen = self._gen
        best = self._best
        best_stamp = self._best_stamp
        settled_stamp = self._settled_stamp
        best[source] = 0.0
        best_stamp[source] = gen
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if settled_stamp[u] == gen:
                continue
            settled_stamp[u] = gen
            if u == target:
                return d
            if d > limit:
                return _INF
            for v, w in adj[u]:
                nd = d + w
                if nd <= limit and (
                    best_stamp[v] != gen or nd < best[v]
                ):
                    best[v] = nd
                    best_stamp[v] = gen
                    heapq.heappush(heap, (nd, v))
        return _INF

    def subgraph_dijkstra(
        self, root: int, members: Sequence[int]
    ) -> Tuple[Dict[int, float], Dict[int, int]]:
        """Dijkstra restricted to the subgraph induced by ``members``.

        Returns ``(dist, parent)`` maps over the member set (unreachable
        members are absent).  For shortest-path-closed member sets (the
        paper's clusters) the induced distances equal the global ones, so
        this replaces a full-graph SSSP per cluster with work proportional
        to the cluster.  The parent rule ties toward the smallest
        predecessor id, as in :meth:`dijkstra`.
        """
        adj = self._flat_adj()
        member_set = set(members)
        if root not in member_set:
            raise ValueError(f"root {root} not among members")
        dist: Dict[int, float] = {root: 0.0}
        parent: Dict[int, int] = {root: root}
        settled: set = set()
        heap: List[Tuple[float, int]] = [(0.0, root)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            if d > dist.get(u, _INF):
                continue
            settled.add(u)
            for v, w in adj[u]:
                if v not in member_set:
                    continue
                nd = d + w
                dv = dist.get(v, _INF)
                if nd < dv:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
                elif nd == dv and v not in settled and u < parent[v]:
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        return dist, parent

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------
    def rows(
        self, sources: Sequence[int], *, prefer_scipy: bool = True
    ) -> np.ndarray:
        """Distance rows for ``sources`` as a ``(len(sources), n)`` array.

        Uses scipy's C Dijkstra (one call per chunk of sources) when
        available; otherwise loops the flat-array kernel.
        """
        sources = list(sources)
        if not sources:
            return np.zeros((0, self.n), dtype=np.float64)
        if prefer_scipy and _HAVE_SCIPY and self.m > 0:
            mat = self._scipy_matrix()
            out = _scipy_dijkstra(mat, directed=False, indices=sources)
            return np.atleast_2d(out)
        out = np.empty((len(sources), self.n), dtype=np.float64)
        for i, s in enumerate(sources):
            out[i] = self.dijkstra(s)[0]
        return out

    def all_balls(
        self,
        ell: int,
        *,
        tol: float = 0.0,
        with_radii: bool = False,
        prefer_scipy: bool = True,
        chunk_bytes: int = _CHUNK_BYTES,
    ) -> Tuple[List[List[int]], Optional[List[float]]]:
        """``B(u, ell)`` for every vertex ``u``, in ``(dist, id)`` order.

        The scipy fast path processes sources in chunks of
        ``chunk_bytes / (8 n)`` rows: one C Dijkstra call per chunk, then a
        vectorized ``(dist, id)`` lexsort per row — peak memory stays
        ``O(chunk * n)``.  The fallback loops the generation-stamped
        truncated kernel, which allocates only the O(ell)-sized outputs per
        source.  Both return exactly the pure-path balls.
        """
        n = self.n
        ell = min(ell, n)
        if n == 0 or ell <= 0:
            return [[] for _ in range(n)], ([0.0] * n if with_radii else None)
        if self.is_unweighted() and tol < 0.5:
            # Unit weights: distances are exact integer levels and a level
            # set ordered by id IS the (dist, id) order, so a vectorized
            # level-BFS reproduces the Dijkstra balls exactly.
            return self._all_balls_bfs(ell, with_radii=with_radii)
        if prefer_scipy and _HAVE_SCIPY and self.m > 0 and 4 * ell <= n:
            return self._all_balls_scipy(
                ell, tol=tol, with_radii=with_radii, chunk_bytes=chunk_bytes
            )
        balls: List[List[int]] = []
        radii: Optional[List[float]] = [] if with_radii else None
        for u in range(n):
            if with_radii:
                ball, _, radius = self.ball_with_radius(u, ell, tol)
                radii.append(radius)
            else:
                ball, _ = self.truncated_dijkstra(u, ell)
            balls.append(ball)
        return balls, radii

    def is_unweighted(self) -> bool:
        """True when every edge weight is exactly 1.0 (cached)."""
        if self._unweighted is None:
            self._unweighted = bool(np.all(self.weights == 1.0))
        return self._unweighted

    def _all_balls_bfs(
        self, ell: int, *, with_radii: bool
    ) -> Tuple[List[List[int]], Optional[List[float]]]:
        """Batched balls on unit-weight graphs via vectorized level BFS.

        Per source, each BFS level is gathered with one ragged numpy
        indexing pass over the CSR arrays (no per-edge Python work) and
        deduplicated with ``np.unique``, whose sorted output is exactly the
        within-level id order of the ``(dist, id)`` total order.  The
        visited array is generation-stamped — no per-source reallocation.
        """
        n = self.n
        indptr, indices, degrees = self.indptr, self.indices, self._degrees
        stamp = self._np_stamp
        balls: List[List[int]] = []
        radii: Optional[List[float]] = [] if with_radii else None
        for u in range(n):
            self._gen += 1
            gen = self._gen
            frontier = np.array([u], dtype=np.int64)
            stamp[u] = gen
            parts = [frontier]
            size = 1
            depth = 0
            dmax = 0
            complete = True
            while size < ell and frontier.size:
                if frontier.size == 1:
                    f = int(frontier[0])
                    nbrs = indices[indptr[f] : indptr[f + 1]]
                else:
                    starts = indptr[frontier]
                    counts = degrees[frontier]
                    total = int(counts.sum())
                    if total == 0:
                        break
                    cum = np.cumsum(counts)
                    base = np.repeat(starts - (cum - counts), counts)
                    nbrs = indices[base + np.arange(total)]
                fresh = nbrs[stamp[nbrs] != gen]
                if fresh.size == 0:
                    break
                # sort + adjacent-diff dedup: same result as np.unique,
                # without its hashing overhead on these small arrays.
                fresh = np.sort(fresh)
                new = fresh[
                    np.concatenate(([True], fresh[1:] != fresh[:-1]))
                ]
                stamp[new] = gen
                depth += 1
                frontier = new
                if size + new.size <= ell:
                    parts.append(new)
                    size += new.size
                    dmax = depth
                else:
                    parts.append(new[: ell - size])
                    size = ell
                    dmax = depth
                    complete = False
            balls.append(np.concatenate(parts).tolist())
            if with_radii:
                radii.append(float(dmax if complete else dmax - 1))
        return balls, radii

    def _estimate_ball_limit(self, ell: int, tol: float) -> float:
        """A distance limit expected to cover ``B(u, ell)`` for most ``u``.

        Samples ~32 exact balls with the flat kernel and takes the largest
        boundary distance plus 5% headroom.  The limit only steers how much
        of each neighbourhood scipy expands; rows it cannot certify are
        recomputed exactly (see :meth:`_all_balls_scipy`), so a bad
        estimate costs time, never correctness.
        """
        stride = max(1, self.n // 32)
        sample_max = 0.0
        short = 0
        samples = 0
        for s in range(0, self.n, stride):
            samples += 1
            ball, dist = self.truncated_dijkstra(s, ell)
            if len(ball) == ell:
                sample_max = max(sample_max, dist[ball[-1]])
            else:
                short += 1  # source's component has fewer than ell vertices
        if sample_max <= 0.0 or 4 * short > samples:
            return _INF
        return sample_max * 1.05 + tol

    def _all_balls_scipy(
        self,
        ell: int,
        *,
        tol: float,
        with_radii: bool,
        chunk_bytes: int,
    ) -> Tuple[List[List[int]], Optional[List[float]]]:
        """Batched balls via scipy's C Dijkstra, truncated by a distance limit.

        A full SSSP per source wastes ~``n / ell`` of its work on vertices
        far outside the ball.  Passing ``limit`` makes scipy stop expanding
        beyond it, so per-source work tracks the ball neighbourhood.  A row
        is *certified* when it has >= ``ell`` finite entries (then the true
        boundary distance is <= limit and no member was cut off) and, when
        radii are requested, ``limit >= dmax + tol`` (so every vertex in
        the boundary tolerance band is visible).  Uncertified rows are
        recomputed without a limit — correctness never depends on the
        estimate.
        """
        n = self.n
        mat = self._scipy_matrix()
        limit = self._estimate_ball_limit(ell, tol)
        chunk = max(1, min(n, chunk_bytes // max(1, 8 * n)))
        balls: List[Optional[List[int]]] = [None] * n
        radii: Optional[List[float]] = [0.0] * n if with_radii else None
        redo: List[int] = []
        for start in range(0, n, chunk):
            srcs = list(range(start, min(start + chunk, n)))
            dmat = np.atleast_2d(
                _scipy_dijkstra(
                    mat, directed=False, indices=srcs, limit=limit
                )
            )
            for i, s in enumerate(srcs):
                if not self._extract_ball(
                    dmat[i], s, ell, tol, limit, with_radii, balls, radii
                ):
                    redo.append(s)
        for start in range(0, len(redo), chunk):
            srcs = redo[start : start + chunk]
            dmat = np.atleast_2d(
                _scipy_dijkstra(mat, directed=False, indices=srcs)
            )
            for i, s in enumerate(srcs):
                self._extract_ball(
                    dmat[i], s, ell, tol, _INF, with_radii, balls, radii
                )
        return balls, radii

    def _extract_ball(
        self,
        row: np.ndarray,
        source: int,
        ell: int,
        tol: float,
        limit: float,
        with_radii: bool,
        balls: List[Optional[List[int]]],
        radii: Optional[List[float]],
    ) -> bool:
        """Fill ``balls[source]`` from a (possibly limited) distance row.

        Returns ``False`` when the limit cannot certify the row (see
        :meth:`_all_balls_scipy`); with ``limit == inf`` every row is
        certified.
        """
        finite_idx = np.flatnonzero(np.isfinite(row))
        if finite_idx.size < ell and limit != _INF:
            return False
        finite_d = row[finite_idx]
        # (dist, id) total order; lexsort's last key is primary.
        order = np.lexsort((finite_idx, finite_d))
        top = finite_idx[order[:ell]]
        ball = top.tolist()
        if with_radii:
            dmax = float(row[ball[-1]])
            if limit != _INF and limit < dmax + tol:
                return False
            radii[source] = _radius_from_row(row, ball, tol)
        balls[source] = ball
        return True


def _radius_from_row(row: np.ndarray, ball: List[int], tol: float) -> float:
    """The paper's ``r_u(ell)`` from a full distance row.

    Mirrors :meth:`repro.graph.metric.MetricView.ball_radius`: the boundary
    distance when the boundary level is fully contained in the ball, else
    the previous level.
    """
    if not ball:
        raise ValueError("empty ball has no radius")
    member_dist = row[np.asarray(ball, dtype=np.int64)]
    dmax = float(member_dist[-1])
    at_dmax_total = int(np.count_nonzero(np.abs(row - dmax) <= tol))
    at_dmax_in_ball = int(
        np.count_nonzero(np.abs(member_dist - dmax) <= tol)
    )
    if at_dmax_in_ball == at_dmax_total:
        return dmax
    inner = member_dist[member_dist < dmax - tol]
    return float(inner.max()) if inner.size else 0.0
