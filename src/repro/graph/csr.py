"""Flat-array CSR shortest-path kernel — the preprocessing hot path.

Every scheme in this reproduction spends nearly all of its preprocessing
time running (truncated) Dijkstra over the list-of-dicts :class:`Graph`.
This module provides an immutable, numpy-backed CSR mirror of a graph —
:class:`CSRGraph` — plus flat-array implementations of the shortest-path
primitives, and a batched :meth:`CSRGraph.all_balls` that computes the
paper's vicinities ``B(u, ell)`` for *every* vertex at once.

Kernel / fallback dispatch
--------------------------
Callers do not import this module directly; they go through the dispatch
functions in :mod:`repro.graph.shortest_paths` (``dijkstra``,
``truncated_dijkstra``, ``multi_source_distances``, ``all_balls``,
``bounded_distance``).  The dispatch picks this kernel when numpy imports
cleanly and ``REPRO_KERNEL=pure`` is not set (resolved once per process),
and otherwise falls back to the pure-Python implementations, which stay in
the tree as the differential-test reference.  Inside the kernel,
:meth:`rows` additionally uses scipy's C ``csgraph.dijkstra`` (chunked over
sources so peak memory stays ``O(chunk * n)``, never ``O(n^2)``) when scipy
is importable.

Batched weighted engine (delta-stepping)
----------------------------------------
Weighted ball sweeps used to go through scipy's ``indices=`` Dijkstra,
which allocates and fills an O(n) output row per source even with a
distance ``limit``.  :meth:`all_balls` now runs a *bucketed delta-stepping*
engine (:meth:`_delta_batch`) directly over the flat CSR arrays: a batch of
``B`` sources is embedded into one flattened index space (``p = i*n + v``
for batch position ``i``), so every per-bucket edge relaxation is a single
ragged numpy gather/scatter over all sources at once — no per-edge Python
work and no per-source O(n) allocation.  Tentative distances live in
persistent flat buffers reused across batches; instead of an O(B*n) refill,
only the entries touched by the previous batch are re-initialised (the
float analogue of the generation-stamp trick used by the scalar kernels).

*Bucket width*: ``delta`` defaults to an eighth of the mean edge weight
(:meth:`CSRGraph.delta_width`).  Rounds cost little — the candidate queue
touches only the open bucket — while each source's settled overshoot is
one bucket past its ball boundary, and on neighbourhood expanders the
region grows exponentially with that margin, so narrow buckets win.  The
width never affects results — every bucket is relaxed to a fixpoint before
it is sealed, so final distances are the unique least fixpoint of
``d[v] = min(d[u] + w)`` in float64, bitwise identical to the pure path.

Two truncation modes share the engine: *ball mode* stops a source once
``ell`` vertices settled and the bucket boundary cleared ``d_max + tol``
(everything the paper's radius rule can see is final), and *bounded mode*
(:meth:`bounded_rows`) stops at a per-source distance limit — the cluster
scans of Section 2 structures read exactly the neighbourhoods they need.

The CSR arrays are built once per :class:`Graph` *version* and cached on
the graph instance (:func:`csr_graph`); mutating the graph invalidates the
cache.  Per-source scratch state (tentative-distance and settled buffers)
is preallocated once per :class:`CSRGraph` and reset with a generation
counter instead of being reallocated for every source, which is what makes
the batched ball sweep cheap.

Tie-breaking invariant
----------------------
All kernels preserve the paper's Section 2 total order *exactly*: balls are
``(distance, id)``-ordered prefixes (heap keys are ``(dist, vertex)``
tuples), multi-source ties resolve toward the smaller source id (the
lexicographic ``p_A(v)`` rule), and Dijkstra parents tie toward the
smallest predecessor id.  Distances are bitwise identical to the
pure-Python path: both accumulate the same float64 edge weights along the
same shortest paths, and the final distance of a vertex is the minimum
over the same candidate set regardless of relaxation order.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .core import Graph

try:  # scipy is optional; the kernel degrades gracefully without it.
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False

__all__ = ["CSRGraph", "csr_graph", "cached_csr_graph"]

_INF = float("inf")

#: default cap on the scipy row-chunk buffer (bytes); keeps the batched
#: ball sweep and lazy row computations at O(chunk * n) peak memory.
_CHUNK_BYTES = 1 << 22

#: default sizing budget for the delta-stepping batch (the flattened
#: tentative-distance buffer stays at ~half of this; candidate queues take
#: the rest).  Also caps batch*n at ~1M entries, so flattened ids — and
#: the batch-position sort key at extraction — stay comfortably narrow.
_DS_BATCH_BYTES = 1 << 24
_DS_NATIVE_BATCH_BYTES = 1 << 21

#: cap on the flattened (source, vertex) gather expansion inside one
#: delta-stepping relaxation round.  Frontiers on large batches can hold
#: millions of entries; blocking the ragged gather keeps every transient
#: (eidx/nd/tgt) array cache-sized and bounds per-worker peak memory in
#: the parallel tier.  Blocking never changes results: later blocks see
#: earlier blocks' dist scatters, which only filters candidates that are
#: superseded (or equal-valued duplicates whose minimum holder is already
#: queued) — the settled sets and least-fixpoint distances are identical.
_GATHER_BLOCK = 1 << 18


def _argsort_with_id_ties(keys: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Argsort by ``(keys, ids)`` without a stable float sort.

    numpy's stable (radix) argsort only covers 16-bit integers; its stable
    float path is ~6x slower than quicksort.  So: quicksort by ``keys``,
    then repair the (usually rare) equal-key runs with an exact
    ``(key, id)`` lexsort of just the tied entries.  Bitwise-deterministic
    for any input, fast when ties are sparse.
    """
    order = np.argsort(keys)
    sk = keys[order]
    tied = np.zeros(sk.size, dtype=bool)
    if sk.size > 1:
        np.equal(sk[1:], sk[:-1], out=tied[1:])
    if tied.any():
        tied[:-1] |= tied[1:]  # cover each run's head as well
        pos = np.flatnonzero(tied)
        sub = order[pos]
        order[pos] = sub[np.lexsort((ids[sub], keys[sub]))]
    return order


def _native_kernels():
    """The loaded native kernels when the resolved mode is ``native``.

    Resolved per call through the two process-level caches
    (:func:`repro.graph.shortest_paths.kernel_mode` and
    :func:`repro.native.try_kernels`), so tests flipping ``REPRO_KERNEL``
    between session-scoped graph fixtures see the flip — nothing is
    pinned on the graph object.
    """
    from .shortest_paths import kernel_mode

    if kernel_mode() != "native":
        return None
    from ..native import load_kernels

    return load_kernels()


def _queue_later(
    pending: Dict[int, List[Tuple[np.ndarray, np.ndarray]]],
    b: int,
    tgt: np.ndarray,
    nd: np.ndarray,
    delta: float,
    inv_delta: float,
) -> bool:
    """Queue out-of-bucket candidates under their bucket keys.

    Shared by the numpy and native engines (the native kernel returns its
    later-bucket candidates in one flat array and queues them through the
    exact same key pipeline).  Returns whether any key was int16-clamped,
    which re-arms the caller's spill guard.

    Bucket keys must agree with the boundary *float comparisons*
    (``nd < (k+1)*delta`` at apply/seal time), not just with
    ``floor(nd/delta)``: when ``nd`` sits one ulp below ``k*delta`` the
    product ``nd*inv_delta`` can round up to ``k``, which would settle the
    candidate one bucket late and let an exact distance tie span two
    buckets — breaking the (dist, id) assembly invariant.  One corrective
    compare pins ``k*delta <= nd``; a too-low key is healed by the spill
    guard.  (Truncation is floor here: every quotient is non-negative.)
    Keys are then clamped into int16, a radix-friendly two-byte sort key;
    the clamp re-arms the spill guard.
    """
    clipped = False
    rel = (nd * inv_delta).astype(np.int32)
    rel -= nd < rel * delta
    rel -= b + 1
    if int(rel.min()) < 0 or int(rel.max()) > 32000:
        np.clip(rel, 0, 32000, out=rel)
        clipped = True
    rel16 = rel.astype(np.int16)
    order = np.argsort(rel16, kind="stable")
    rel16 = rel16[order]
    tgt = tgt[order]
    nd = nd[order]
    cuts = np.flatnonzero(
        np.concatenate(([True], rel16[1:] != rel16[:-1]))
    )
    for j, lo in enumerate(cuts):
        hi = cuts[j + 1] if j + 1 < len(cuts) else rel16.size
        pending.setdefault(b + 1 + int(rel16[lo]), []).append(
            (tgt[lo:hi], nd[lo:hi])
        )
    return clipped


def csr_graph(g: Graph) -> "CSRGraph":
    """The CSR mirror of ``g``, built once per graph version and cached."""
    cached = g._csr_cache
    if cached is not None and cached[0] == g._version:
        return cached[1]
    kernel = CSRGraph.from_graph(g)
    g._csr_cache = (g._version, kernel)
    return kernel


def cached_csr_graph(g: Graph) -> Optional["CSRGraph"]:
    """A *current* cached CSR mirror of ``g``, or ``None`` — never builds.

    Mutation-heavy callers (e.g. the greedy spanner, which queries the
    spanner while growing it) use this so each query does not pay an
    O(n + m) rebuild; they fall back to the pure path instead.
    """
    cached = g._csr_cache
    if cached is not None and cached[0] == g._version:
        return cached[1]
    return None


class CSRGraph:
    """Immutable flat-array (CSR) view of an undirected weighted graph.

    ``indptr``/``indices``/``weights`` are the usual CSR triple with both
    edge directions materialized; per-row neighbour order is the graph's
    deterministic insertion order.  ``_adj`` is the same adjacency as plain
    Python ``(neighbour, weight)`` tuple lists — CPython iterates those
    much faster than numpy scalars, so the heap kernels run on it while the
    numpy arrays serve construction, scipy interop and vectorized
    postprocessing.
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "indices",
        "weights",
        "_adj",
        "_scipy_mat",
        "_gen",
        "_best",
        "_best_stamp",
        "_settled_stamp",
        "_np_stamp",
        "_degrees",
        "_unweighted",
        "_ds_dist",
        "_ds_delta",
        "_ds_csr32",
        "_ds_arange",
        "_ds_stamp",
        "_ds_gen",
        "_ds_wmax",
        "_parallel",
        "__weakref__",
    )

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        self.n = int(n)
        self.m = int(len(indices) // 2)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._adj: Optional[List[List[Tuple[int, float]]]] = None
        self._scipy_mat = None
        # Generation-stamped scratch buffers: a slot is valid only when its
        # stamp equals the current generation, so "resetting" all n slots
        # between sources is a single integer increment.
        self._gen = 0
        self._best = [0.0] * self.n
        self._best_stamp = [0] * self.n
        self._settled_stamp = [0] * self.n
        self._np_stamp = np.zeros(self.n, dtype=np.int64)
        self._degrees = np.diff(indptr)
        self._unweighted: Optional[bool] = None
        # Delta-stepping scratch (lazily grown, reused across batches).
        self._ds_dist: Optional[np.ndarray] = None
        self._ds_delta: Optional[float] = None
        self._ds_csr32 = None
        self._ds_arange: Optional[np.ndarray] = None
        # Native-tier scratch: a generation-stamped expansion record the
        # compiled bucket kernel uses instead of the numpy wave dedupe.
        self._ds_stamp: Optional[np.ndarray] = None
        self._ds_gen = 0
        self._ds_wmax: Optional[float] = None
        # The published multiprocess engine (repro.graph.parallel),
        # cached so one graph publishes its shared segments once.
        self._parallel: Optional[Any] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        """Build the CSR arrays from a :class:`Graph` (insertion order kept)."""
        n = g.n
        nnz = 2 * g.m
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(nnz, dtype=np.int64)
        weights = np.empty(nnz, dtype=np.float64)
        pos = 0
        for u in range(n):
            adj_u = g._adj[u]
            indptr[u + 1] = indptr[u] + len(adj_u)
            for v, w in adj_u.items():
                indices[pos] = v
                weights[pos] = w
                pos += 1
        return cls(n, indptr, indices, weights)

    def _flat_adj(self) -> List[List[Tuple[int, float]]]:
        if self._adj is None:
            idx = self.indices.tolist()
            wts = self.weights.tolist()
            ptr = self.indptr.tolist()
            self._adj = [
                list(zip(idx[ptr[u] : ptr[u + 1]], wts[ptr[u] : ptr[u + 1]]))
                for u in range(self.n)
            ]
        return self._adj

    def _scipy_matrix(self) -> Optional[Any]:
        """The scipy CSR adjacency (copied arrays so scipy cannot reorder ours)."""
        if not _HAVE_SCIPY:
            return None
        if self._scipy_mat is None:
            self._scipy_mat = _scipy_csr_matrix(
                (
                    self.weights.copy(),
                    self.indices.copy(),
                    self.indptr.copy(),
                ),
                shape=(self.n, self.n),
            )
        return self._scipy_mat

    # ------------------------------------------------------------------
    # Single-source kernels
    # ------------------------------------------------------------------
    def dijkstra(self, source: int) -> Tuple[List[float], List[Optional[int]]]:
        """Flat-array single-source Dijkstra.

        Matches :func:`repro.graph.shortest_paths.dijkstra_py` exactly,
        including the deterministic parent rule (ties toward the smallest
        predecessor id).
        """
        adj = self._flat_adj()
        n = self.n
        dist: List[float] = [_INF] * n
        parent: List[Optional[int]] = [None] * n
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        done = bytearray(n)
        while heap:
            d, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = 1
            for v, w in adj[u]:
                nd = d + w
                dv = dist[v]
                if nd < dv:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
                elif nd == dv:
                    pv = parent[v]
                    if pv is not None and u < pv:
                        parent[v] = u
                        heapq.heappush(heap, (nd, v))
        return dist, parent

    def truncated_dijkstra(
        self, source: int, ell: int
    ) -> Tuple[List[int], Dict[int, float]]:
        """The ``ell`` closest vertices of ``source`` in ``(dist, id)`` order.

        Scratch buffers are generation-stamped, so back-to-back calls (the
        all-balls sweep) do no per-source O(n) reallocation.
        """
        if ell <= 0:
            return [], {}
        adj = self._flat_adj()
        self._gen += 1
        gen = self._gen
        best = self._best
        best_stamp = self._best_stamp
        ball: List[int] = []
        dist: Dict[int, float] = {}
        best[source] = 0.0
        best_stamp[source] = gen
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap and len(ball) < ell:
            d, u = heapq.heappop(heap)
            if u in dist:
                continue
            if best_stamp[u] == gen and d > best[u]:
                continue
            dist[u] = d
            ball.append(u)
            for v, w in adj[u]:
                nd = d + w
                if v not in dist and (
                    best_stamp[v] != gen or nd < best[v]
                ):
                    best[v] = nd
                    best_stamp[v] = gen
                    heapq.heappush(heap, (nd, v))
        return ball, dist

    def ball_with_radius(
        self, source: int, ell: int, tol: float = 0.0
    ) -> Tuple[List[int], Dict[int, float], float]:
        """``B(source, ell)`` plus the paper's radius ``r_u(ell)``.

        After the ball fills, the search keeps popping: if any *new* vertex
        settles within ``tol`` of the boundary distance, the boundary level
        is only partially contained and the radius drops to the previous
        level — identical semantics to
        :meth:`repro.graph.metric.MetricView.ball_radius`.
        """
        if ell <= 0:
            raise ValueError("empty ball has no radius")
        adj = self._flat_adj()
        self._gen += 1
        gen = self._gen
        best = self._best
        best_stamp = self._best_stamp
        ball: List[int] = []
        dist: Dict[int, float] = {}
        best[source] = 0.0
        best_stamp[source] = gen
        heap: List[Tuple[float, int]] = [(0.0, source)]
        dmax = 0.0
        boundary_complete = True
        while heap:
            d, u = heapq.heappop(heap)
            if u in dist:
                continue
            if best_stamp[u] == gen and d > best[u]:
                continue
            if len(ball) >= ell:
                # First excess settle decides the boundary level.
                boundary_complete = d > dmax + tol
                break
            dist[u] = d
            ball.append(u)
            dmax = d
            for v, w in adj[u]:
                nd = d + w
                if v not in dist and (
                    best_stamp[v] != gen or nd < best[v]
                ):
                    best[v] = nd
                    best_stamp[v] = gen
                    heapq.heappush(heap, (nd, v))
        if boundary_complete:
            radius = dmax
        else:
            inner = [d for d in dist.values() if d < dmax - tol]
            radius = max(inner) if inner else 0.0
        return ball, dist, radius

    def multi_source_distances(
        self, sources: Sequence[int]
    ) -> Tuple[List[float], List[int]]:
        """Nearest-source distances; ties toward the smaller source id."""
        adj = self._flat_adj()
        n = self.n
        dist: List[float] = [_INF] * n
        nearest: List[int] = [-1] * n
        heap: List[Tuple[float, int, int]] = []
        for s in sorted(set(sources)):
            dist[s] = 0.0
            nearest[s] = s
            heap.append((0.0, s, s))
        heapq.heapify(heap)
        while heap:
            d, src, u = heapq.heappop(heap)
            if (d, src) > (dist[u], nearest[u]):
                continue
            for v, w in adj[u]:
                nd = d + w
                dv = dist[v]
                if nd < dv or (nd == dv and src < nearest[v]):
                    dist[v] = nd
                    nearest[v] = src
                    heapq.heappush(heap, (nd, src, v))
        return dist, nearest

    def bounded_distance(
        self, source: int, target: int, limit: float
    ) -> float:
        """Distance ``d(source, target)`` if at most ``limit``, else ``inf``."""
        adj = self._flat_adj()
        self._gen += 1
        gen = self._gen
        best = self._best
        best_stamp = self._best_stamp
        settled_stamp = self._settled_stamp
        best[source] = 0.0
        best_stamp[source] = gen
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if settled_stamp[u] == gen:
                continue
            settled_stamp[u] = gen
            if u == target:
                return d
            if d > limit:
                return _INF
            for v, w in adj[u]:
                nd = d + w
                if nd <= limit and (
                    best_stamp[v] != gen or nd < best[v]
                ):
                    best[v] = nd
                    best_stamp[v] = gen
                    heapq.heappush(heap, (nd, v))
        return _INF

    def subgraph_dijkstra(
        self, root: int, members: Sequence[int]
    ) -> Tuple[Dict[int, float], Dict[int, int]]:
        """Dijkstra restricted to the subgraph induced by ``members``.

        Returns ``(dist, parent)`` maps over the member set (unreachable
        members are absent).  For shortest-path-closed member sets (the
        paper's clusters) the induced distances equal the global ones, so
        this replaces a full-graph SSSP per cluster with work proportional
        to the cluster.  The parent rule ties toward the smallest
        predecessor id, as in :meth:`dijkstra`.
        """
        adj = self._flat_adj()
        member_set = set(members)
        if root not in member_set:
            raise ValueError(f"root {root} not among members")
        dist: Dict[int, float] = {root: 0.0}
        parent: Dict[int, int] = {root: root}
        settled: set = set()
        heap: List[Tuple[float, int]] = [(0.0, root)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            if d > dist.get(u, _INF):
                continue
            settled.add(u)
            for v, w in adj[u]:
                if v not in member_set:
                    continue
                nd = d + w
                dv = dist.get(v, _INF)
                if nd < dv:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
                elif nd == dv and v not in settled and u < parent[v]:
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        return dist, parent

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------
    def rows(
        self, sources: Sequence[int], *, prefer_scipy: bool = True
    ) -> np.ndarray:
        """Distance rows for ``sources`` as a ``(len(sources), n)`` array.

        Uses scipy's C Dijkstra (one call per chunk of sources) when
        available; otherwise loops the flat-array kernel.
        """
        sources = list(sources)
        if not sources:
            return np.zeros((0, self.n), dtype=np.float64)
        if prefer_scipy and _HAVE_SCIPY and self.m > 0:
            mat = self._scipy_matrix()
            out = _scipy_dijkstra(mat, directed=False, indices=sources)
            return np.atleast_2d(out)
        out = np.empty((len(sources), self.n), dtype=np.float64)
        for i, s in enumerate(sources):
            out[i] = self.dijkstra(s)[0]
        return out

    def _spt_pred_rows(self, roots: Sequence[int]) -> np.ndarray:
        """scipy predecessor rows for ``roots`` (scipy required).

        One row per root; negative entries mark the root itself and
        unreachable vertices.  Each row is a single-source computation,
        so batching and chunking leave every row bit-identical.
        """
        mat = self._scipy_matrix()
        _, pred = _scipy_dijkstra(
            mat,
            directed=False,
            indices=list(roots),
            return_predecessors=True,
        )
        return np.atleast_2d(pred)

    def spt_pred_rows(self, roots: Sequence[int]) -> Optional[np.ndarray]:
        """Batched SPT predecessor rows, or ``None`` when unavailable.

        The landmark/hub-tree build primitive: one scipy C Dijkstra call
        (fanned out over the parallel tier when enabled) replaces a
        per-root python SSSP.  Returns ``None`` without scipy or on an
        edgeless graph — callers fall back to their per-root path.
        """
        roots = list(roots)
        if not _HAVE_SCIPY or self.m == 0 or not roots:
            return None
        from . import parallel

        eng = parallel.engine_for(
            self, len(roots), floor=parallel._MIN_PARALLEL_TREES
        )
        if eng is not None:
            return np.vstack(eng.pred_rows(roots))
        return self._spt_pred_rows(roots)

    def _resolve_ball_engine(
        self, engine: Optional[str], *, tol: float, prefer_scipy: bool
    ) -> str:
        """Resolve the ``all_balls`` engine name to a concrete choice.

        Same semantics the dispatch in :meth:`all_balls` always had —
        auto picks BFS on unit weights and delta otherwise, an explicit
        ``scipy`` raises rather than silently timing a different engine
        (benchmarks race engines by name), and an edgeless graph demotes
        scipy to the flat loop.  Factored out so the parallel tier ships
        workers a concrete engine, never the auto rule.
        """
        if engine is None:
            if self.is_unweighted() and tol < 0.5:
                # Unit weights: distances are exact integer levels and a
                # level set ordered by id IS the (dist, id) order, so a
                # vectorized level-BFS reproduces the Dijkstra balls.
                return "bfs"
            return "delta"
        if engine == "bfs":
            if not (self.is_unweighted() and tol < 0.5):
                raise ValueError("bfs engine requires unit weights")
            return "bfs"
        if engine == "delta":
            return "delta"
        if engine == "scipy":
            if not _HAVE_SCIPY or not prefer_scipy:
                raise ValueError("scipy engine requested but unavailable")
            if self.m == 0:
                return "flat"  # edgeless graph: nothing for scipy to do
            return "scipy"
        if engine != "flat":
            raise ValueError(f"unknown all_balls engine {engine!r}")
        return "flat"

    def all_balls(
        self,
        ell: int,
        *,
        tol: float = 0.0,
        with_radii: bool = False,
        prefer_scipy: bool = True,
        chunk_bytes: int = _CHUNK_BYTES,
        batch_bytes: int = _DS_BATCH_BYTES,
        engine: Optional[str] = None,
        as_arrays: bool = False,
    ) -> Union[
        Tuple[List[List[int]], Optional[List[float]]],
        Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]],
    ]:
        """``B(u, ell)`` for every vertex ``u``, in ``(dist, id)`` order.

        ``engine`` picks the batched implementation:

        * ``None`` (auto) — vectorized level BFS on unit-weight graphs,
          the delta-stepping engine otherwise.
        * ``"delta"`` — force the delta-stepping engine.
        * ``"scipy"`` — the chunked scipy ``limit=`` path with exact-redo
          safety net (the pre-delta implementation, kept for benchmarks
          and as a fallback); raises when scipy is unavailable or
          ``prefer_scipy`` is false, never silently times another engine.
        * ``"flat"`` — loop the generation-stamped scalar kernel.
        * ``"bfs"`` — the unit-weight level sweep (unit weights only).

        When ``REPRO_PARALLEL`` enables the multiprocess tier (see
        :mod:`repro.graph.parallel`) the source range is fanned out over
        shared-memory workers each running the very same engine; results
        are spliced back in source order and are bit-identical to the
        serial sweep for every engine.

        ``as_arrays=True`` returns the compact ``(bounds, verts, radii)``
        arrays instead of Python lists — ``verts[bounds[u]:bounds[u+1]]``
        is ``B(u, ell)`` — which is what 10^5+-vertex builds want (the
        list-of-lists materialization dwarfs the compute there).

        Every engine returns exactly the pure-path balls and radii.
        """
        n = self.n
        ell = min(ell, n)
        if n == 0 or ell <= 0:
            if as_arrays:
                return (
                    np.zeros(n + 1, dtype=np.int64),
                    np.empty(0, dtype=np.int32),
                    np.zeros(n) if with_radii else None,
                )
            return [[] for _ in range(n)], ([0.0] * n if with_radii else None)
        resolved = self._resolve_ball_engine(
            engine, tol=tol, prefer_scipy=prefer_scipy
        )
        from . import parallel

        eng = parallel.engine_for(self, n)
        if eng is not None:
            bounds, verts, radii_arr = eng.ball_arrays(
                n,
                ell,
                tol=tol,
                with_radii=with_radii,
                engine=resolved,
                chunk_bytes=chunk_bytes,
                batch_bytes=batch_bytes,
            )
        else:
            bounds, verts, radii_arr = self._ball_chunk_arrays(
                0,
                n,
                ell,
                tol=tol,
                with_radii=with_radii,
                engine=resolved,
                chunk_bytes=chunk_bytes,
                batch_bytes=batch_bytes,
            )
        if as_arrays:
            return bounds, verts, radii_arr
        balls = [
            verts[bounds[u] : bounds[u + 1]].tolist() for u in range(n)
        ]
        radii = radii_arr.tolist() if radii_arr is not None else None
        return balls, radii

    def _ball_chunk_arrays(
        self,
        lo: int,
        hi: int,
        ell: int,
        *,
        tol: float,
        with_radii: bool,
        engine: str,
        chunk_bytes: int = _CHUNK_BYTES,
        batch_bytes: int = _DS_BATCH_BYTES,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Balls for the source range ``[lo, hi)`` as compact arrays.

        The unit of work the parallel tier ships to a worker: returns
        ``(bounds, verts, radii)`` with ``bounds`` of length
        ``hi - lo + 1`` and ``verts[bounds[i]:bounds[i+1]]`` the ball of
        source ``lo + i``.  ``engine`` must already be resolved.
        """
        if engine == "bfs":
            return self._ball_chunk_bfs(lo, hi, ell, with_radii=with_radii)
        if engine == "delta":
            return self._ball_chunk_delta(
                lo, hi, ell, tol=tol, with_radii=with_radii,
                batch_bytes=batch_bytes,
            )
        if engine == "scipy":
            return self._ball_chunk_scipy(
                lo, hi, ell, tol=tol, with_radii=with_radii,
                chunk_bytes=chunk_bytes,
            )
        return self._ball_chunk_flat(lo, hi, ell, tol=tol,
                                     with_radii=with_radii)

    def _ball_chunk_flat(
        self, lo: int, hi: int, ell: int, *, tol: float, with_radii: bool
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Balls for ``[lo, hi)`` by looping the scalar flat kernel."""
        sizes = np.zeros(hi - lo, dtype=np.int64)
        verts_parts: List[np.ndarray] = []
        radii: Optional[np.ndarray] = (
            np.zeros(hi - lo, dtype=np.float64) if with_radii else None
        )
        for u in range(lo, hi):
            if radii is not None:
                ball, _, radius = self.ball_with_radius(u, ell, tol)
                radii[u - lo] = radius
            else:
                ball, _ = self.truncated_dijkstra(u, ell)
            sizes[u - lo] = len(ball)
            verts_parts.append(np.asarray(ball, dtype=np.int32))
        bounds = np.zeros(hi - lo + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])
        verts = (
            np.concatenate(verts_parts)
            if verts_parts
            else np.empty(0, dtype=np.int32)
        )
        return bounds, verts, radii

    def is_unweighted(self) -> bool:
        """True when every edge weight is exactly 1.0 (cached)."""
        if self._unweighted is None:
            self._unweighted = bool(np.all(self.weights == 1.0))
        return self._unweighted

    # ------------------------------------------------------------------
    # Delta-stepping engine
    # ------------------------------------------------------------------
    def delta_width(self) -> float:
        """Default bucket width: one eighth of the mean edge weight.

        Small buckets keep the settled overshoot (one bucket past each
        source's ball boundary) tight — on neighbourhood-expander graphs
        the region grows exponentially with distance, so the margin
        matters far more than the round count; rounds themselves are
        cheap because the candidate queue touches only the open bucket.
        Any positive width is *correct* (buckets relax to a fixpoint
        before sealing); the width only tunes the work profile.  Measured
        on the bench workload (ER ``n=2000, m~4n``, uniform ``[1, 10]``
        weights), ``mean/8``–``mean/16`` is the flat optimum.
        """
        if self._ds_delta is None:
            w = self.weights
            mean = float(w.mean()) if w.size else 1.0
            self._ds_delta = mean / 8.0 if mean > 0.0 else 1.0
        return self._ds_delta

    def _ds_batch_size(self, batch_bytes: int = _DS_BATCH_BYTES) -> int:
        """Sources per delta batch so the scratch stays ~``batch_bytes``.

        The native engine's scratch is a 24-byte per-vertex record that
        its scalar hot loop revisits constantly, so it runs smaller,
        cache-sized batches than the numpy engine's vectorised sweeps.
        Per-source outputs are independent of the batch split (each
        source's fixpoint and bookkeeping never read another source's
        state), so the engines stay bit-identical while batching
        differently.
        """
        if _native_kernels() is not None:
            batch_bytes = min(batch_bytes, _DS_NATIVE_BATCH_BYTES)
            per_source = 24 * self.n
        else:
            per_source = 16 * self.n
        return max(1, min(self.n, batch_bytes // max(1, per_source)))

    def _ds_csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Int32 CSR mirrors for the engine (half the gather traffic).

        Flattened ``(batch, vertex)`` ids stay below ``batch * n``, which
        :meth:`_ds_batch_size` keeps well inside int32 range, so the whole
        index pipeline — including its radix sorts — runs on 4-byte ints.
        """
        if self._ds_csr32 is None:
            self._ds_csr32 = (
                self.indptr.astype(np.int32),
                self.indices.astype(np.int32),
                self._degrees.astype(np.int32),
            )
        return self._ds_csr32

    def _ds_buffers(self, batch: int) -> np.ndarray:
        """Persistent flattened ``(batch * n)`` scratch, inf-initialised.

        Reused across batches; callers must restore every touched entry to
        ``inf`` before returning (sparse reset — the float analogue of the
        generation-stamp trick).
        """
        need = batch * self.n
        if self._ds_dist is None or self._ds_dist.size < need:
            self._ds_dist = np.full(need, _INF)
        return self._ds_dist

    def _ds_ring_size(self, delta: float) -> int:
        """Bucket-ring slots for the native engine: ``wmax/delta`` + slop.

        A candidate generated in bucket ``b`` has ``nd < (b+1)*delta +
        wmax``, so its key lands within ``wmax/delta`` buckets ahead; the
        slop covers the corrective-compare and requeue-one-ahead edges.
        """
        if self._ds_wmax is None:
            self._ds_wmax = (
                float(self.weights.max()) if self.weights.size else 0.0
            )
        return int(self._ds_wmax / delta) + 8

    def _ds_native_vtx(self, batch: int) -> Tuple[np.ndarray, int]:
        """Scratch for the native batch kernel: ``(vtx, gen)``.

        ``vtx`` is ``batch * n`` interleaved 24-byte records ``{dist,
        expanded, stamp}`` — one cache-line touch per vertex access in
        the C hot loop.  A record is valid only while its stamp matches
        the generation (the kernel reads untouched slots as ``+inf``),
        so clearing all slots between kernel calls is one integer
        increment; the buffer is zeroed once at allocation and the
        generation starts at 1, so a zero stamp is never current (and
        int64 never wraps).
        """
        need = 3 * batch * self.n
        if self._ds_stamp is None or self._ds_stamp.size < need:
            self._ds_stamp = np.zeros(need, dtype=np.int64)
            self._ds_gen = 0
        self._ds_gen += 1
        return self._ds_stamp, self._ds_gen

    def _ds_arange_view(self, tot: int) -> np.ndarray:
        """A read-only ``arange(tot)`` view from a grown-on-demand buffer."""
        if self._ds_arange is None or self._ds_arange.size < tot:
            self._ds_arange = np.arange(
                max(tot, 2 * len(self.indices) or 1), dtype=np.int32
            )
        return self._ds_arange[:tot]

    def _delta_batch(
        self,
        sources: Sequence[int],
        *,
        ell: Optional[int] = None,
        limits: Optional[np.ndarray] = None,
        tol: float = 0.0,
        delta: Optional[float] = None,
        prune: float = _INF,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One bucketed delta-stepping pass over a batch of sources.

        Exactly one of the truncation modes applies:

        * *ball mode* (``ell``): a source finishes once ``ell`` of its
          vertices settled **and** the sealed bucket boundary cleared the
          fill boundary by ``tol`` — every distance the radius rule can
          inspect is final at that point.
        * *bounded mode* (``limits``): a source finishes once the sealed
          boundary reaches its limit; settled vertices beyond the limit
          are dropped from the output.

        ``prune`` discards relaxation candidates at distance >= ``prune``
        *before* the scatter, confining the search to the target
        neighbourhood instead of everything below the bucket boundary.
        Distances below ``prune`` stay exact (every prefix of a shortest
        path is at most its endpoint's distance, so no contributing
        relaxation is dropped); entries at or beyond it may be missing or
        stale, which callers must account for (bounded mode passes the max
        limit, so its output is always exact; ball mode certifies
        ``d_max + tol < prune`` per source and recomputes the rest).

        Returns ``(bounds, verts, dists)``: per-source slices
        ``verts[bounds[i]:bounds[i+1]]`` of settled vertices, sorted by
        ``(dist, id)`` in ball mode and by ``id`` in bounded mode.
        Distances are the least float64 fixpoint of the Bellman relaxation
        — bitwise identical to the scalar Dijkstra kernels.
        """
        n = self.n
        srcs = np.asarray(list(sources), dtype=np.int64)
        nb = len(srcs)
        if nb == 0:
            return (
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        if delta is None:
            delta = self.delta_width()
        if limits is not None:
            # Contiguous materialisation matters: callers pass broadcast
            # (zero-stride) views, and the native kernel walks the raw
            # buffer — np.asarray would keep the strides.
            lim = np.ascontiguousarray(limits, dtype=np.float64)
            # Bounded outputs are strict (d < limit), so the limit itself
            # is a valid per-source prune horizon.
            cap = np.minimum(np.full(nb, prune), lim)
        else:
            cap = np.full(nb, prune)
        indptr, indices, degrees = self._ds_csr_arrays()
        weights = self.weights
        start = np.arange(nb, dtype=np.int32) * np.int32(n) + srcs.astype(
            np.int32
        )
        native = _native_kernels()
        if native is not None:
            # Compiled engine: one call runs the whole batch — bucket
            # queue, apply/relax fixpoints, scatter-min, sealing and the
            # per-source fill/finish bookkeeping all in C over zero-copy
            # pointers into the CSR mirrors and the cap array (mutated
            # in place, exactly like the loop below).  Settled ids come
            # back in bucket order with their final distances: ball-mode
            # chunks already (dist, id)-sorted — the concatenated
            # per-chunk assembly the numpy path builds below — so the
            # only work left is the shared per-source regrouping.
            vtx, gen = self._ds_native_vtx(nb)
            settled, settled_d = native.delta_batch(
                indptr, indices, weights, n, nb, start, vtx, cap,
                lim if limits is not None else None,
                delta, self._ds_ring_size(delta), ell, tol, gen,
            )
            if limits is None:
                all_t, ds = settled, settled_d
            else:
                order = np.argsort(settled)
                all_t = settled[order]
                ds = settled_d[order]
            return self._ds_assemble(
                all_t, ds, nb, lim if limits is not None else None
            )
        dist = self._ds_buffers(nb)
        inv_delta = 1.0 / delta
        # Candidate bucket queue: pending[b] holds (target, dist) chunks
        # whose tentative distance lies in [b*delta, (b+1)*delta).
        # Candidates scatter their minimum into the dist buffer the
        # moment they are generated (so later, worse candidates for the
        # same vertex are never queued), and a queued entry is *applied*
        # — confirmed equal to the surviving tentative value — only once
        # its bucket opens.  Nothing is ever rescanned across buckets.
        pending: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {
            0: [(start, np.zeros(nb, dtype=np.float64))]
        }
        # Sources are queued like any candidate but must also be
        # pre-scattered: apply never writes the dist buffer, generation
        # does.
        dist[start] = 0.0
        touched: List[np.ndarray] = [start]
        any_clipped = False
        settled_chunks: List[np.ndarray] = []
        counts = np.zeros(nb, dtype=np.int64)
        fill_t = np.full(nb, _INF)
        done = np.zeros(nb, dtype=bool)
        has_cap = bool(np.isfinite(cap).any())
        while pending:
            b = min(pending)
            chunks = pending.pop(b)
            t_high = (b + 1) * delta
            if len(chunks) == 1:
                cand_t, cand_d = chunks[0]
            else:
                cand_t = np.concatenate([c[0] for c in chunks])
                cand_d = np.concatenate([c[1] for c in chunks])
            # Bucket keys agree with the boundary comparisons by
            # construction (see the key fix-up below), so a candidate can
            # only sit at or past its bucket's boundary when its key was
            # int16-clamped; the spill scan runs only once that has
            # happened, forwarding such candidates bucket by bucket —
            # the monotone requeue keeps sealing sound regardless.
            if any_clipped:
                spill = cand_d >= t_high
                if spill.any():
                    pending.setdefault(b + 1, []).append(
                        (cand_t[spill], cand_d[spill])
                    )
                    inb = ~spill
                    cand_t, cand_d = cand_t[inb], cand_d[inb]
            written: List[np.ndarray] = []
            # Apply + relax to a fixpoint; edges shorter than delta can
            # re-enter the open bucket, everything else is queued.
            while cand_t.size:
                # A queued candidate is live iff it still IS the best
                # tentative value of its target (the generation-time
                # scatter keeps dist at the running minimum, so `<=`
                # means "not superseded").
                alive = cand_d <= dist[cand_t]
                if has_cap:
                    alive &= cand_d < cap[cand_t // n]
                t_i = cand_t[alive]
                if t_i.size == 0:
                    break
                d_i = cand_d[alive]
                # Distinct candidates can tie at the same (minimal) value
                # for one target; a plain sort + first-hit dedupes.  No
                # stability needed — every live duplicate carries the
                # identical value.  (numpy's stable argsort has no radix
                # path beyond int16, so quicksort is ~6x faster here.)
                order = np.argsort(t_i)
                t_s = t_i[order]
                d_s = d_i[order]
                head = np.empty(t_s.size, dtype=bool)
                head[0] = True
                np.not_equal(t_s[1:], t_s[:-1], out=head[1:])
                t_u = t_s[head]
                d_u = d_s[head]
                written.append(t_u)
                # Generate the relaxation candidates of the just-settled
                # vertices (their distances are in the open bucket).  The
                # ragged gather is *cache-blocked*: the flattened
                # (source, vertex) expansion of a big frontier can reach
                # many millions of entries, so it is cut into runs of
                # ~_GATHER_BLOCK edges and each run does the full
                # expand/cap/scatter/queue pass before the next starts.
                # Blocking keeps every transient array cache-sized (and
                # bounds per-worker peak memory in the parallel tier)
                # without changing results: later blocks observe earlier
                # blocks' dist scatters, which only drops candidates that
                # are superseded — or equal-valued duplicates whose
                # minimum holder is already queued — so the settled sets
                # and least-fixpoint distances are identical.
                v_all = t_u % n
                cnt_all = degrees[v_all]
                tot_all = int(cnt_all.sum())
                if tot_all == 0:
                    break
                if tot_all <= _GATHER_BLOCK:
                    edges = [0, t_u.size]
                else:
                    cum_all = np.cumsum(cnt_all)
                    marks = np.searchsorted(
                        cum_all,
                        np.arange(_GATHER_BLOCK, tot_all, _GATHER_BLOCK),
                        side="left",
                    )
                    edges = [0]
                    for e in (marks + 1).tolist():
                        if edges[-1] < e < t_u.size:
                            edges.append(e)
                    edges.append(t_u.size)
                now_t_parts: List[np.ndarray] = []
                now_d_parts: List[np.ndarray] = []
                for blo, bhi in zip(edges[:-1], edges[1:]):
                    t_b = t_u[blo:bhi]
                    d_b = d_u[blo:bhi]
                    v = v_all[blo:bhi]
                    cnt = cnt_all[blo:bhi]
                    tot = int(cnt.sum())
                    if tot == 0:
                        continue
                    cum = np.cumsum(cnt)
                    eidx = np.repeat(indptr[v] - (cum - cnt), cnt)
                    eidx += self._ds_arange_view(tot)
                    nd = np.repeat(d_b, cnt) + weights[eidx]
                    if has_cap:
                        within = nd < np.repeat(cap[t_b // n], cnt)
                        if not within.all():
                            nd = nd[within]
                            eidx = eidx[within]
                            tgt = (
                                np.repeat(t_b - v, cnt)[within]
                                + indices[eidx]
                            )
                        else:
                            tgt = np.repeat(t_b - v, cnt) + indices[eidx]
                    else:
                        tgt = np.repeat(t_b - v, cnt) + indices[eidx]
                    # Keep only genuine improvements and scatter their
                    # minimum into the tentative buffer immediately:
                    # later, worse candidates for the same vertex then
                    # never enter the queues at all.
                    useful = nd < dist[tgt]
                    if not useful.all():
                        nd = nd[useful]
                        tgt = tgt[useful]
                    if nd.size == 0:
                        continue
                    np.minimum.at(dist, tgt, nd)
                    touched.append(tgt)
                    now = nd < t_high
                    if now.any():
                        now_t_parts.append(tgt[now])
                        now_d_parts.append(nd[now])
                        later = ~now
                        tgt, nd = tgt[later], nd[later]
                    if nd.size:
                        if _queue_later(
                            pending, b, tgt, nd, delta, inv_delta
                        ):
                            any_clipped = True
                if now_t_parts:
                    if len(now_t_parts) == 1:
                        cand_t = now_t_parts[0]
                        cand_d = now_d_parts[0]
                    else:
                        cand_t = np.concatenate(now_t_parts)
                        cand_d = np.concatenate(now_d_parts)
                else:
                    cand_t = t_u[:0]
            # Seal the bucket: everything written here is now final.
            if written:
                if len(written) == 1:
                    newly = written[0]
                else:
                    newly = np.unique(np.concatenate(written))
                settled_chunks.append(newly)
                counts += np.bincount(newly // n, minlength=nb)
            if ell is not None:
                just_filled = ~done & np.isinf(fill_t) & (counts >= ell)
                if just_filled.any():
                    # A filled source's boundary d_max lies strictly below
                    # this bucket, so nothing at or beyond fill_t + tol
                    # can reach its ball or its tol-band: shrink its
                    # horizon while it waits out the tol margin.
                    fill_t[just_filled] = t_high
                    np.minimum(cap, fill_t + tol, out=cap)
                    has_cap = True
                finished = ~done & (t_high >= fill_t + tol)
            else:
                finished = ~done & (t_high >= lim)
            if finished.any():
                done |= finished
                # Kill the source outright: every queued or future
                # candidate dies against an impossible horizon.
                cap[finished] = -_INF
                has_cap = True
            # Sources whose queues run dry simply stop contributing —
            # their settled set is their reachable region below the cap.
        # Assemble the per-source output order without a full 3-key
        # lexsort.  Seal chunks arrive in bucket order (disjoint,
        # ascending distance ranges), each sorted by flattened id:
        # * ball mode — sort every chunk by distance (stable, so equal
        #   distances keep id order; a distance tie cannot span buckets),
        #   concatenate, then one stable sort by source recovers the
        #   exact (source, dist, id) order.
        # * bounded mode — the flattened id itself fuses (source, id), so
        #   a single integer sort is the whole ordering.
        if not settled_chunks:
            all_t = np.empty(0, dtype=np.int32)
            ds = np.empty(0, dtype=np.float64)
        elif limits is None:
            parts_t = []
            parts_d = []
            for chunk in settled_chunks:
                dsc = dist[chunk]
                o = _argsort_with_id_ties(dsc, chunk)
                parts_t.append(chunk[o])
                parts_d.append(dsc[o])
            all_t = np.concatenate(parts_t)
            ds = np.concatenate(parts_d)
        else:
            all_t = np.concatenate(settled_chunks)
            order = np.argsort(all_t)
            all_t = all_t[order]
            ds = dist[all_t]
        # Sparse reset of every scattered tentative entry (duplicates are
        # harmless) — the float analogue of the generation-stamp trick.
        dist[np.concatenate(touched)] = _INF
        return self._ds_assemble(
            all_t, ds, nb, lim if limits is not None else None
        )

    def _ds_assemble(
        self,
        all_t: np.ndarray,
        ds: np.ndarray,
        nb: int,
        lim: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared engine tail: regroup flattened settled ids per source.

        ``all_t``/``ds`` arrive in global (dist, id)-within-bucket order
        (ball mode, ``lim is None``) or ascending-id order (bounded
        mode); both engines produce the identical arrays, so this split
        is the bit-identity seam between them.
        """
        n = self.n
        bpos = all_t // n
        verts = all_t - bpos * n
        if lim is None:
            # Batch positions always fit int16 (batch * n is capped at
            # ~1M entries), where numpy's stable argsort is a radix sort.
            order = np.argsort(bpos.astype(np.int16), kind="stable")
            bpos = bpos[order]
            verts = verts[order]
            ds = ds[order]
        else:
            sel = ds < lim[bpos]
            bpos, verts, ds = bpos[sel], verts[sel], ds[sel]
        bounds = np.searchsorted(bpos, np.arange(nb + 1))
        return bounds, verts, ds

    def _ball_chunk_delta(
        self,
        lo: int,
        hi: int,
        ell: int,
        *,
        tol: float,
        with_radii: bool,
        delta: Optional[float] = None,
        batch_bytes: int = _DS_BATCH_BYTES,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Weighted balls for ``[lo, hi)`` via the delta-stepping engine.

        Each source's search self-truncates: once its ball fills, its cap
        drops to the fill boundary plus ``tol``, so expansion never
        exceeds the ball region by more than one bucket.  Sources that
        run dry early (small components) yield their whole reachable set,
        exactly like the scalar kernel.  Per-source results depend only
        on the CSR arrays and the (graph-global) bucket width, so any
        partition of the source range is bit-identical.
        """
        count = hi - lo
        sizes = np.zeros(count, dtype=np.int64)
        verts_parts: List[np.ndarray] = []
        radii: Optional[np.ndarray] = (
            np.zeros(count, dtype=np.float64) if with_radii else None
        )
        batch = self._ds_batch_size(batch_bytes)
        for start in range(lo, hi, batch):
            stop = min(start + batch, hi)
            bounds, verts, ds = self._delta_batch(
                range(start, stop), ell=ell, tol=tol, delta=delta
            )
            seg_lens = np.diff(bounds)
            k_arr = np.minimum(ell, seg_lens)
            sizes[start - lo : stop - lo] = k_arr
            total = int(bounds[-1])
            if total:
                # Keep each segment's k-prefix: global position j of
                # segment i survives iff j < bounds[i] + k_i.
                keep = np.arange(total) < np.repeat(
                    bounds[:-1] + k_arr, seg_lens
                )
                verts_parts.append(verts[keep])
            if radii is None or total == 0:
                continue
            # Same rule as _radius_from_row, exploiting that each
            # per-source segment is distance-sorted: the boundary level
            # is complete iff nothing past the ball lies within tol of
            # d_max.  Every vertex within tol of the boundary is settled
            # (see _delta_batch), so the counts are exact.  Vectorised
            # O(1)-per-source check: with tol >= 0 the level is complete
            # iff the ball is the whole segment or the first vertex past
            # it clears d_max + tol; the rare incomplete sources fall
            # back to the two-searchsorted band scan.
            nz = k_arr > 0
            b0 = bounds[:-1]
            dmax = ds[np.maximum(b0 + k_arr - 1, 0)]
            past = ds[np.minimum(b0 + k_arr, total - 1)]
            if tol >= 0.0:
                complete = nz & (
                    (k_arr == seg_lens) | (past > dmax + tol)
                )
            else:
                complete = np.zeros(len(k_arr), dtype=bool)
            batch_radii = np.where(complete, dmax, 0.0)
            for i in np.flatnonzero(nz & ~complete):
                seg = ds[bounds[i] : bounds[i + 1]]
                band_lo = int(
                    np.searchsorted(seg, float(dmax[i]) - tol, "left")
                )
                if band_lo > 0:
                    batch_radii[i] = float(seg[band_lo - 1])
            radii[start - lo : stop - lo] = batch_radii
        out_bounds = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(sizes, out=out_bounds[1:])
        out_verts = (
            np.concatenate(verts_parts)
            if verts_parts
            else np.empty(0, dtype=np.int32)
        )
        return out_bounds, out_verts, radii

    def bounded_rows(
        self,
        sources: Sequence[int],
        limits: Union[float, Sequence[float], np.ndarray],
        *,
        delta: Optional[float] = None,
        batch_bytes: int = _DS_BATCH_BYTES,
    ) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(source, verts, dists)`` with ``d(source, v) < limit``.

        ``limits`` is a scalar or per-source array; ``verts`` ascends by id
        and covers *exactly* the vertices closer than the source's limit
        (``inf`` sweeps the source's whole component).  Runs the
        delta-stepping engine in bounded mode, batched — the cluster-scan
        primitive behind :class:`~repro.structures.bunches.BunchStructure`
        and Lemma 4 sampling.
        """
        sources = list(sources)
        lim = np.broadcast_to(
            np.asarray(limits, dtype=np.float64), (len(sources),)
        )
        from . import parallel

        eng = parallel.engine_for(self, len(sources))
        if eng is not None:
            for (bounds, verts, ds), chunk in eng.bounded_chunks(
                sources, lim, delta, batch_bytes
            ):
                for i, s in enumerate(chunk):
                    lo, hi = int(bounds[i]), int(bounds[i + 1])
                    yield s, verts[lo:hi], ds[lo:hi]
            return
        batch = self._ds_batch_size(batch_bytes)
        for start in range(0, len(sources), batch):
            chunk = sources[start : start + batch]
            bounds, verts, ds = self._delta_batch(
                chunk, limits=lim[start : start + batch], delta=delta
            )
            for i, s in enumerate(chunk):
                lo, hi = int(bounds[i]), int(bounds[i + 1])
                yield s, verts[lo:hi], ds[lo:hi]

    def _bounded_chunk_arrays(
        self,
        sources: Sequence[int],
        limits: Union[Sequence[float], np.ndarray],
        *,
        delta: Optional[float] = None,
        batch_bytes: int = _DS_BATCH_BYTES,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bounded sweeps for an explicit source list, as compact arrays.

        The worker-side unit of :meth:`bounded_rows`: runs the serial
        batched engine over ``sources`` and splices the per-batch
        ``(bounds, verts, ds)`` triples into one.  Per-source results
        depend only on the CSR arrays and the per-source limit, so any
        chunking is bit-identical to the serial generator.
        """
        sources = list(sources)
        lim = np.asarray(limits, dtype=np.float64)
        batch = self._ds_batch_size(batch_bytes)
        sizes_parts: List[np.ndarray] = []
        verts_parts: List[np.ndarray] = []
        ds_parts: List[np.ndarray] = []
        for start in range(0, len(sources), batch):
            chunk = sources[start : start + batch]
            bounds, verts, ds = self._delta_batch(
                chunk, limits=lim[start : start + batch], delta=delta
            )
            sizes_parts.append(np.diff(bounds))
            verts_parts.append(verts)
            ds_parts.append(ds)
        out_bounds = np.zeros(len(sources) + 1, dtype=np.int64)
        if sizes_parts:
            np.cumsum(np.concatenate(sizes_parts), out=out_bounds[1:])
        out_verts = (
            np.concatenate(verts_parts)
            if verts_parts
            else np.empty(0, dtype=np.int32)
        )
        out_ds = (
            np.concatenate(ds_parts)
            if ds_parts
            else np.empty(0, dtype=np.float64)
        )
        return out_bounds, out_verts, out_ds

    def _ball_chunk_bfs(
        self, lo: int, hi: int, ell: int, *, with_radii: bool
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Balls for ``[lo, hi)`` on unit-weight graphs via level BFS.

        Per source, each BFS level is gathered with one ragged numpy
        indexing pass over the CSR arrays (no per-edge Python work) and
        deduplicated with a sort, whose sorted output is exactly the
        within-level id order of the ``(dist, id)`` total order.  The
        visited array is generation-stamped — no per-source reallocation.
        Each source's BFS is independent, so chunking is bit-identical.
        """
        indptr, indices, degrees = self.indptr, self.indices, self._degrees
        stamp = self._np_stamp
        sizes = np.zeros(hi - lo, dtype=np.int64)
        verts_parts: List[np.ndarray] = []
        radii: Optional[np.ndarray] = (
            np.zeros(hi - lo, dtype=np.float64) if with_radii else None
        )
        for u in range(lo, hi):
            self._gen += 1
            gen = self._gen
            frontier = np.array([u], dtype=np.int64)
            stamp[u] = gen
            parts = [frontier]
            size = 1
            depth = 0
            dmax = 0
            complete = True
            while size < ell and frontier.size:
                if frontier.size == 1:
                    f = int(frontier[0])
                    nbrs = indices[indptr[f] : indptr[f + 1]]
                else:
                    starts = indptr[frontier]
                    counts = degrees[frontier]
                    total = int(counts.sum())
                    if total == 0:
                        break
                    cum = np.cumsum(counts)
                    base = np.repeat(starts - (cum - counts), counts)
                    nbrs = indices[base + np.arange(total)]
                fresh = nbrs[stamp[nbrs] != gen]
                if fresh.size == 0:
                    break
                # sort + adjacent-diff dedup: same result as np.unique,
                # without its hashing overhead on these small arrays.
                fresh = np.sort(fresh)
                new = fresh[
                    np.concatenate(([True], fresh[1:] != fresh[:-1]))
                ]
                stamp[new] = gen
                depth += 1
                frontier = new
                if size + new.size <= ell:
                    parts.append(new)
                    size += new.size
                    dmax = depth
                else:
                    parts.append(new[: ell - size])
                    size = ell
                    dmax = depth
                    complete = False
            ball = np.concatenate(parts)
            sizes[u - lo] = ball.size
            verts_parts.append(ball)
            if radii is not None:
                radii[u - lo] = float(dmax if complete else dmax - 1)
        bounds = np.zeros(hi - lo + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])
        verts = (
            np.concatenate(verts_parts).astype(np.int32)
            if verts_parts
            else np.empty(0, dtype=np.int32)
        )
        return bounds, verts, radii

    def _estimate_ball_limit(self, ell: int, tol: float) -> float:
        """A distance limit expected to cover ``B(u, ell)`` for most ``u``.

        Samples ~32 exact balls with the flat kernel and takes the largest
        boundary distance plus 5% headroom.  The limit only steers how much
        of each neighbourhood scipy expands; rows it cannot certify are
        recomputed exactly (see :meth:`_ball_chunk_scipy`), so a bad
        estimate costs time, never correctness.
        """
        stride = max(1, self.n // 32)
        sample_max = 0.0
        short = 0
        samples = 0
        for s in range(0, self.n, stride):
            samples += 1
            ball, dist = self.truncated_dijkstra(s, ell)
            if len(ball) == ell:
                sample_max = max(sample_max, dist[ball[-1]])
            else:
                short += 1  # source's component has fewer than ell vertices
        if sample_max <= 0.0 or 4 * short > samples:
            return _INF
        return sample_max * 1.05 + tol

    def _ball_chunk_scipy(
        self,
        lo: int,
        hi: int,
        ell: int,
        *,
        tol: float,
        with_radii: bool,
        chunk_bytes: int,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Balls for ``[lo, hi)`` via scipy's limit-truncated C Dijkstra.

        A full SSSP per source wastes ~``n / ell`` of its work on vertices
        far outside the ball.  Passing ``limit`` makes scipy stop expanding
        beyond it, so per-source work tracks the ball neighbourhood.  A row
        is *certified* when it has >= ``ell`` finite entries (then the true
        boundary distance is <= limit and no member was cut off) and, when
        radii are requested, ``limit >= dmax + tol`` (so every vertex in
        the boundary tolerance band is visible).  Uncertified rows are
        recomputed without a limit — correctness never depends on the
        estimate.  The limit itself samples the *whole* graph, so every
        source chunk derives the identical limit and certify/redo makes
        results exact regardless — chunking is bit-identical.
        """
        n = self.n
        count = hi - lo
        mat = self._scipy_matrix()
        limit = self._estimate_ball_limit(ell, tol)
        chunk = max(1, min(n, chunk_bytes // max(1, 8 * n)))
        balls: List[Optional[List[int]]] = [None] * count
        radii: Optional[np.ndarray] = (
            np.zeros(count, dtype=np.float64) if with_radii else None
        )
        redo: List[int] = []
        for start in range(lo, hi, chunk):
            srcs = list(range(start, min(start + chunk, hi)))
            dmat = np.atleast_2d(
                _scipy_dijkstra(
                    mat, directed=False, indices=srcs, limit=limit
                )
            )
            for i, s in enumerate(srcs):
                if not self._extract_ball(
                    dmat[i], s - lo, ell, tol, limit, with_radii,
                    balls, radii,
                ):
                    redo.append(s)
        for start in range(0, len(redo), chunk):
            srcs = redo[start : start + chunk]
            dmat = np.atleast_2d(
                _scipy_dijkstra(mat, directed=False, indices=srcs)
            )
            for i, s in enumerate(srcs):
                self._extract_ball(
                    dmat[i], s - lo, ell, tol, _INF, with_radii,
                    balls, radii,
                )
        sizes = np.zeros(count, dtype=np.int64)
        verts_parts: List[np.ndarray] = []
        for i, ball in enumerate(balls):
            members = ball if ball is not None else []
            sizes[i] = len(members)
            verts_parts.append(np.asarray(members, dtype=np.int32))
        bounds = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])
        verts = (
            np.concatenate(verts_parts)
            if verts_parts
            else np.empty(0, dtype=np.int32)
        )
        return bounds, verts, radii

    def _extract_ball(
        self,
        row: np.ndarray,
        slot: int,
        ell: int,
        tol: float,
        limit: float,
        with_radii: bool,
        balls: List[Optional[List[int]]],
        radii: Optional[np.ndarray],
    ) -> bool:
        """Fill ``balls[slot]`` from a (possibly limited) distance row.

        Returns ``False`` when the limit cannot certify the row (see
        :meth:`_ball_chunk_scipy`); with ``limit == inf`` every row is
        certified.
        """
        finite_idx = np.flatnonzero(np.isfinite(row))
        if finite_idx.size < ell and limit != _INF:
            return False
        finite_d = row[finite_idx]
        # (dist, id) total order; lexsort's last key is primary.
        order = np.lexsort((finite_idx, finite_d))
        top = finite_idx[order[:ell]]
        ball = top.tolist()
        if with_radii:
            dmax = float(row[ball[-1]])
            if limit != _INF and limit < dmax + tol:
                return False
            radii[slot] = _radius_from_row(row, ball, tol)
        balls[slot] = ball
        return True


def _radius_from_row(row: np.ndarray, ball: List[int], tol: float) -> float:
    """The paper's ``r_u(ell)`` from a full distance row.

    Mirrors :meth:`repro.graph.metric.MetricView.ball_radius`: the boundary
    distance when the boundary level is fully contained in the ball, else
    the previous level.
    """
    if not ball:
        raise ValueError("empty ball has no radius")
    member_dist = row[np.asarray(ball, dtype=np.int64)]
    dmax = float(member_dist[-1])
    at_dmax_total = int(np.count_nonzero(np.abs(row - dmax) <= tol))
    at_dmax_in_ball = int(
        np.count_nonzero(np.abs(member_dist - dmax) <= tol)
    )
    if at_dmax_in_ball == at_dmax_total:
        return dmax
    inner = member_dist[member_dist < dmax - tol]
    return float(inner.max()) if inner.size else 0.0
