"""Undirected graph representation used throughout the reproduction.

The paper works with undirected graphs ``G = (V, E)`` that are either
unweighted or carry positive real edge weights.  This module provides a small,
dependency-free ``Graph`` class with:

* integer vertex ids ``0 .. n-1`` (compact routing labels are built on them),
* adjacency lists with deterministic neighbour order (insertion order),
* O(1) edge/weight lookup,
* validation helpers and conversion to/from ``networkx`` and ``scipy``
  CSR matrices (used by the shortest-path substrate).

Vertices are dense integers on purpose: the fixed-port routing model
(:mod:`repro.routing.ports`) assigns port numbers per vertex, and dense ids
keep every table a plain list/dict of machine words, which makes the space
accounting in :mod:`repro.routing.model` meaningful.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

__all__ = ["Graph", "GraphError"]


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


class Graph:
    """A simple undirected graph with positive edge weights.

    Parameters
    ----------
    n:
        Number of vertices.  Vertices are ``0 .. n-1``.

    Notes
    -----
    Self loops and parallel edges are rejected: neither occurs in the
    paper's model and both would break the fixed-port assumptions.
    """

    __slots__ = ("_n", "_adj", "_m", "_version", "_csr_cache")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._n = n
        # _adj[u] maps neighbour -> weight; dicts preserve insertion order,
        # which gives us a deterministic neighbour ordering for ports.
        self._adj: List[Dict[int, float]] = [dict() for _ in range(n)]
        self._m = 0
        # Mutation counter; lets derived structures (the CSR kernel) detect
        # staleness without holding a reference that outlives the edges.
        self._version = 0
        # (version, CSRGraph) pair maintained by repro.graph.csr.csr_graph.
        self._csr_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]] | Iterable[Tuple[int, int, float]],
        default_weight: float = 1.0,
    ) -> "Graph":
        """Build a graph from an edge iterable.

        Each edge is ``(u, v)`` or ``(u, v, weight)``.  Duplicate edges
        raise; use :meth:`add_or_update_edge` for idempotent building.
        """
        g = cls(n)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                w = default_weight
            else:
                u, v, w = edge  # type: ignore[misc]
            g.add_edge(u, v, w)
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Convert an undirected networkx graph with contiguous int nodes.

        Node labels are re-indexed to ``0..n-1`` in sorted order; edge
        attribute ``weight`` is honoured when present.
        """
        nodes = sorted(nxg.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        g = cls(len(nodes))
        for u, v, data in nxg.edges(data=True):
            if u == v:
                continue
            g.add_edge(index[u], index[v], float(data.get("weight", 1.0)))
        return g

    def copy(self) -> "Graph":
        """Return a deep copy of this graph.

        The copy replicates each adjacency dict directly so per-vertex
        neighbour *insertion order* is preserved exactly.  (Re-adding edges
        in ``u < v`` scan order would silently permute the deterministic
        port numbering :mod:`repro.routing.ports` derives from it.)
        """
        g = Graph(self._n)
        g._adj = [dict(adj) for adj in self._adj]
        g._m = self._m
        return g

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add undirected edge ``{u, v}`` with a positive weight."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop at vertex {u} is not allowed")
        if weight <= 0:
            raise GraphError(
                f"edge ({u},{v}) must have positive weight, got {weight}"
            )
        if v in self._adj[u]:
            raise GraphError(f"duplicate edge ({u},{v})")
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)
        self._m += 1
        self._version += 1

    def add_or_update_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add edge ``{u, v}`` or update its weight if already present."""
        if self.has_edge(u, v):
            self._adj[u][v] = float(weight)
            self._adj[v][u] = float(weight)
            self._version += 1
        else:
            self.add_edge(u, v, weight)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._m

    def vertices(self) -> range:
        """Iterate vertex ids ``0..n-1``."""
        return range(self._n)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for u in range(self._n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    def neighbors(self, u: int) -> List[int]:
        """Neighbours of ``u`` in deterministic (insertion) order."""
        self._check_vertex(u)
        return list(self._adj[u].keys())

    def neighbor_items(self, u: int) -> List[Tuple[int, float]]:
        """``(neighbour, weight)`` pairs of ``u`` in deterministic order."""
        self._check_vertex(u)
        return list(self._adj[u].items())

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        self._check_vertex(u)
        return len(self._adj[u])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises if absent."""
        self._check_vertex(u)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u},{v}) does not exist")
        return self._adj[u][v]

    def is_unweighted(self, tol: float = 0.0) -> bool:
        """True when every edge weight equals 1 (within ``tol``)."""
        return all(abs(w - 1.0) <= tol for _, _, w in self.edges())

    def min_weight(self) -> float:
        """Smallest edge weight; raises on edgeless graphs."""
        if self._m == 0:
            raise GraphError("graph has no edges")
        return min(w for _, _, w in self.edges())

    def max_weight(self) -> float:
        """Largest edge weight; raises on edgeless graphs."""
        if self._m == 0:
            raise GraphError("graph has no edges")
        return max(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> List[List[int]]:
        """Connected components as sorted vertex lists."""
        seen = [False] * self._n
        components: List[List[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                u = stack.pop()
                component.append(u)
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        """True when the graph has a single connected component."""
        if self._n == 0:
            return True
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_csr(self):
        """Return a ``scipy.sparse.csr_matrix`` adjacency (weights as data)."""
        import numpy as np
        from scipy.sparse import csr_matrix

        rows, cols, data = [], [], []
        for u in range(self._n):
            for v, w in self._adj[u].items():
                rows.append(u)
                cols.append(v)
                data.append(w)
        return csr_matrix(
            (np.asarray(data, dtype=float), (rows, cols)),
            shape=(self._n, self._n),
        )

    def to_networkx(self):
        """Return the equivalent ``networkx.Graph``."""
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(range(self._n))
        for u, v, w in self.edges():
            nxg.add_edge(u, v, weight=w)
        return nxg

    def to_adjacency(self) -> List[List[Tuple[int, float]]]:
        """Per-vertex ``(neighbour, weight)`` lists in insertion order.

        This is the *lossless* serialization of a graph: unlike an
        ``edges()`` dump, rebuilding from it preserves each vertex's
        neighbour insertion order exactly, and therefore the deterministic
        default port numbering :mod:`repro.routing.ports` derives from it.
        """
        return [list(adj.items()) for adj in self._adj]

    @classmethod
    def from_adjacency(
        cls, adjacency: List[List[Tuple[int, float]]]
    ) -> "Graph":
        """Inverse of :meth:`to_adjacency` (validates symmetry)."""
        g = cls(len(adjacency))
        m2 = 0
        for u, items in enumerate(adjacency):
            for v, w in items:
                v = int(v)
                g._check_vertex(v)
                if u == v:
                    raise GraphError(f"self loop at vertex {u} is not allowed")
                if w <= 0:
                    raise GraphError(
                        f"edge ({u},{v}) must have positive weight, got {w}"
                    )
                if v in g._adj[u]:
                    raise GraphError(
                        f"duplicate adjacency entry ({u},{v})"
                    )
                g._adj[u][v] = float(w)
                m2 += 1
        for u, adj in enumerate(g._adj):
            for v, w in adj.items():
                if g._adj[v].get(u) != w:
                    raise GraphError(
                        f"asymmetric adjacency between {u} and {v}"
                    )
        if m2 % 2:
            raise GraphError("adjacency lists encode an odd half-edge count")
        g._m = m2 // 2
        return g

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        kind = "unweighted" if self._m and self.is_unweighted() else "weighted"
        return f"Graph(n={self._n}, m={self._m}, {kind})"

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not isinstance(u, (int,)) or isinstance(u, bool):
            raise GraphError(f"vertex id must be an int, got {u!r}")
        if not 0 <= u < self._n:
            raise GraphError(f"vertex {u} out of range [0, {self._n})")
