"""Shortest-path algorithms: BFS, Dijkstra, truncated (ball) Dijkstra, APSP.

Tie-breaking discipline
-----------------------
Vertex vicinities ``B(u, ell)`` (the ``ell`` closest vertices of ``u``) must
be defined with respect to a *consistent total order*; the paper breaks
distance ties "by lexicographical order of vertex names" (Section 2).  We use
the total order ``x <_u y  iff  (d(u,x), x) < (d(u,y), y)``.  Property 1 —
``v in B(u, ell)`` and ``w`` on a shortest ``u``–``v`` path implies
``v in B(w, ell)`` — holds for this order for *every* shortest path, which is
what makes ball routing (Lemma 2) loop-free.  All ball computations in the
repository go through :func:`truncated_dijkstra` or
:func:`repro.graph.metric.MetricView.ball`, both of which honour this order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from .core import Graph

__all__ = [
    "bfs_distances",
    "dijkstra",
    "truncated_dijkstra",
    "shortest_path_tree",
    "multi_source_distances",
    "path_length",
]

_INF = float("inf")


def bfs_distances(g: Graph, source: int) -> List[float]:
    """Hop distances from ``source``; unreachable vertices get ``inf``."""
    dist = [_INF] * g.n
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in g.neighbors(u):
            if dist[v] == _INF:
                dist[v] = dist[u] + 1.0
                queue.append(v)
    return dist


def dijkstra(
    g: Graph, source: int
) -> Tuple[List[float], List[Optional[int]]]:
    """Single-source Dijkstra.

    Returns ``(dist, parent)`` where ``parent[v]`` is ``v``'s predecessor on
    a shortest path from ``source`` (ties resolved toward the smallest
    ``(distance, id)`` predecessor, keeping trees deterministic).
    """
    dist = [_INF] * g.n
    parent: List[Optional[int]] = [None] * g.n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    done = [False] * g.n
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v, w in g.neighbor_items(u):
            nd = d + w
            if nd < dist[v] or (nd == dist[v] and parent[v] is not None and u < parent[v]):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def truncated_dijkstra(
    g: Graph, source: int, ell: int
) -> Tuple[List[int], Dict[int, float]]:
    """The ``ell`` closest vertices of ``source`` in ``(dist, id)`` order.

    Returns ``(ball, dist)`` where ``ball`` lists the closest vertices in
    increasing ``(distance, id)`` order (``source`` itself first) and ``dist``
    maps each ball member to its distance.  This is the paper's
    ``B(u, ell)``.

    The heap is keyed by ``(distance, id)`` so pops follow exactly the total
    order ``<_u`` described in the module docstring.
    """
    if ell <= 0:
        return [], {}
    ball: List[int] = []
    dist: Dict[int, float] = {}
    best: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap and len(ball) < ell:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        if d > best.get(u, _INF):
            continue
        dist[u] = d
        ball.append(u)
        for v, w in g.neighbor_items(u):
            nd = d + w
            if v not in dist and nd < best.get(v, _INF):
                best[v] = nd
                heapq.heappush(heap, (nd, v))
    return ball, dist


def shortest_path_tree(
    g: Graph, root: int, members: Optional[Sequence[int]] = None
) -> Dict[int, int]:
    """Shortest-path tree rooted at ``root`` as a ``child -> parent`` map.

    When ``members`` is given, the tree is restricted to that vertex set,
    which must be *shortest-path closed toward the root* (true for the
    paper's clusters ``C_A(w)``): every member's parent on the shortest path
    is then itself a member.  The root maps to itself.
    """
    dist, parent = dijkstra(g, root)
    if members is None:
        members = [v for v in g.vertices() if dist[v] < _INF]
    member_set = set(members)
    if root not in member_set:
        raise ValueError(f"root {root} not among tree members")
    tree: Dict[int, int] = {root: root}
    for v in members:
        if v == root:
            continue
        if dist[v] == _INF:
            raise ValueError(f"member {v} unreachable from root {root}")
        p = parent[v]
        # Walk up until we hit a member; for shortest-path-closed member
        # sets this loop exits immediately.
        while p is not None and p not in member_set:
            p = parent[p]
        if p is None:
            raise ValueError(
                f"member set is not shortest-path closed toward {root} at {v}"
            )
        tree[v] = p
    return tree


def multi_source_distances(g: Graph, sources: Sequence[int]) -> Tuple[List[float], List[int]]:
    """Distance to the nearest source, and that source, for every vertex.

    Returns ``(dist, nearest)``.  ``nearest[v]`` is the paper's ``p_A(v)``
    with ties broken toward the smaller source id (lexicographic rule).
    ``nearest[v] == -1`` when no source is reachable.
    """
    dist = [_INF] * g.n
    nearest = [-1] * g.n
    heap: List[Tuple[float, int, int]] = []
    for s in sorted(sources):
        if dist[s] == _INF or s < nearest[s]:
            dist[s] = 0.0
            nearest[s] = s
            heap.append((0.0, s, s))
    heapq.heapify(heap)
    while heap:
        d, src, u = heapq.heappop(heap)
        if (d, src) > (dist[u], nearest[u]):
            continue
        for v, w in g.neighbor_items(u):
            nd = d + w
            if nd < dist[v] or (nd == dist[v] and src < nearest[v]):
                dist[v] = nd
                nearest[v] = src
                heapq.heappush(heap, (nd, src, v))
    return dist, nearest


def path_length(g: Graph, path: Sequence[int]) -> float:
    """Total weight of a vertex path; validates that each hop is an edge."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += g.weight(u, v)
    return total
