"""Shortest-path algorithms: BFS, Dijkstra, truncated (ball) Dijkstra, APSP.

Tie-breaking discipline
-----------------------
Vertex vicinities ``B(u, ell)`` (the ``ell`` closest vertices of ``u``) must
be defined with respect to a *consistent total order*; the paper breaks
distance ties "by lexicographical order of vertex names" (Section 2).  We use
the total order ``x <_u y  iff  (d(u,x), x) < (d(u,y), y)``.  Property 1 —
``v in B(u, ell)`` and ``w`` on a shortest ``u``–``v`` path implies
``v in B(w, ell)`` — holds for this order for *every* shortest path, which is
what makes ball routing (Lemma 2) loop-free.  All ball computations in the
repository go through :func:`truncated_dijkstra` / :func:`all_balls` or
:func:`repro.graph.metric.MetricView.ball`, all of which honour this order.

Kernel dispatch
---------------
``REPRO_KERNEL`` selects one of three engines, all producing *identical*
results — same distances, same ``(dist, id)`` ball order, same
deterministic parents — which the differential suites assert:

* ``pure`` (aliases ``py``/``python``): the pure-Python reference
  implementations, also exported under ``*_py`` names;
* ``numpy`` (aliases ``np``/``kernel``): the flat-array CSR kernel
  (:mod:`repro.graph.csr`) with its numpy delta-stepping batch engine;
* ``native``: the numpy kernel with the compiled inner loops from
  :mod:`repro.native` — *forced*, so a host without a compiler and
  without a cached library raises the typed
  :class:`repro.native.NativeUnavailableError`;
* ``auto`` (or unset): prefers ``native`` when the library loads and
  otherwise falls back to ``numpy`` recording why
  (:func:`repro.native.fallback_reason`) — or to ``pure`` when numpy
  itself is missing.

Any other value raises :class:`KernelConfigError` rather than silently
running a different engine than the caller asked for.

The choice is resolved **once per process** on first use
(:func:`kernel_mode` caches it), so mutating the environment mid-run cannot
silently mix engines inside one structure build; tests that need to flip
the switch call :func:`reset_kernel_choice` after changing the environment
variable.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from .core import Graph

__all__ = [
    "bfs_distances",
    "dijkstra",
    "truncated_dijkstra",
    "shortest_path_tree",
    "multi_source_distances",
    "all_balls",
    "bounded_distance",
    "subgraph_dijkstra",
    "path_length",
    "dijkstra_py",
    "truncated_dijkstra_py",
    "multi_source_distances_py",
    "bounded_distance_py",
    "subgraph_dijkstra_py",
    "use_kernel",
    "kernel_mode",
    "reset_kernel_choice",
    "KernelConfigError",
]

_INF = float("inf")

#: cached kernel mode; None = not yet resolved (see kernel_mode).
_KERNEL_MODE: Optional[str] = None

_PURE_NAMES = ("pure", "py", "python")
_NUMPY_NAMES = ("numpy", "np", "kernel")
_AUTO_NAMES = ("", "auto")


class KernelConfigError(ValueError):
    """``REPRO_KERNEL`` named an engine the dispatch does not know."""


def kernel_mode() -> str:
    """The active engine: ``"pure"``, ``"numpy"`` or ``"native"``.

    Resolved once per process and cached: every dispatch in a run sees the
    same choice, so a mid-run mutation of ``REPRO_KERNEL`` cannot mix
    engines within one structure build.
    """
    global _KERNEL_MODE
    if _KERNEL_MODE is None:
        _KERNEL_MODE = _resolve_kernel_mode()
    return _KERNEL_MODE


def use_kernel() -> bool:
    """Whether the CSR kernel is active (i.e. the mode is not ``pure``)."""
    return kernel_mode() != "pure"


def reset_kernel_choice() -> None:
    """Drop the cached :func:`kernel_mode` resolution (test-only hook).

    The next dispatch re-reads ``REPRO_KERNEL`` from the environment.
    """
    global _KERNEL_MODE
    _KERNEL_MODE = None


def _resolve_kernel_mode() -> str:
    raw = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if raw in _PURE_NAMES:
        return "pure"
    if raw != "native" and raw not in _NUMPY_NAMES + _AUTO_NAMES:
        raise KernelConfigError(
            f"REPRO_KERNEL={raw!r} is not a known engine; expected "
            "pure (py/python), numpy (np/kernel), native, or auto"
        )
    try:
        from . import csr  # noqa: F401
    except ImportError:
        if raw == "native":
            raise KernelConfigError(
                "REPRO_KERNEL=native requires numpy, which failed to import"
            )
        return "pure"
    if raw == "native":
        # Forced: surface the typed NativeUnavailableError/NativeBuildError
        # instead of silently running the numpy engine.
        from ..native import load_kernels

        load_kernels()
        return "native"
    if raw in _AUTO_NAMES:
        from ..native import try_kernels

        if try_kernels() is not None:
            return "native"
        return "numpy"
    return "numpy"


def _kernel(g: Graph):
    """The cached CSR kernel for ``g``, or ``None`` for the pure path."""
    if g.n == 0 or not use_kernel():
        return None
    from .csr import csr_graph

    return csr_graph(g)


def bfs_distances(g: Graph, source: int) -> List[float]:
    """Hop distances from ``source``; unreachable vertices get ``inf``."""
    dist = [_INF] * g.n
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in g.neighbors(u):
            if dist[v] == _INF:
                dist[v] = dist[u] + 1.0
                queue.append(v)
    return dist


def dijkstra(
    g: Graph, source: int
) -> Tuple[List[float], List[Optional[int]]]:
    """Single-source Dijkstra (kernel-dispatched).

    Returns ``(dist, parent)`` where ``parent[v]`` is ``v``'s predecessor on
    a shortest path from ``source`` (ties resolved toward the smallest
    ``(distance, id)`` predecessor, keeping trees deterministic).
    """
    kernel = _kernel(g)
    if kernel is not None:
        return kernel.dijkstra(source)
    return dijkstra_py(g, source)


def dijkstra_py(
    g: Graph, source: int
) -> Tuple[List[float], List[Optional[int]]]:
    """Pure-Python single-source Dijkstra (differential-test reference)."""
    dist = [_INF] * g.n
    parent: List[Optional[int]] = [None] * g.n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    done = [False] * g.n
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v, w in g.neighbor_items(u):
            nd = d + w
            if nd < dist[v] or (nd == dist[v] and parent[v] is not None and u < parent[v]):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def truncated_dijkstra(
    g: Graph, source: int, ell: int
) -> Tuple[List[int], Dict[int, float]]:
    """The ``ell`` closest vertices of ``source`` in ``(dist, id)`` order.

    Returns ``(ball, dist)`` where ``ball`` lists the closest vertices in
    increasing ``(distance, id)`` order (``source`` itself first) and ``dist``
    maps each ball member to its distance.  This is the paper's
    ``B(u, ell)``.  Kernel-dispatched; both paths key their heap by
    ``(distance, id)`` so pops follow exactly the total order ``<_u``
    described in the module docstring.
    """
    kernel = _kernel(g)
    if kernel is not None:
        return kernel.truncated_dijkstra(source, ell)
    return truncated_dijkstra_py(g, source, ell)


def truncated_dijkstra_py(
    g: Graph, source: int, ell: int
) -> Tuple[List[int], Dict[int, float]]:
    """Pure-Python truncated Dijkstra (differential-test reference)."""
    if ell <= 0:
        return [], {}
    ball: List[int] = []
    dist: Dict[int, float] = {}
    best: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap and len(ball) < ell:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        if d > best.get(u, _INF):
            continue
        dist[u] = d
        ball.append(u)
        for v, w in g.neighbor_items(u):
            nd = d + w
            if v not in dist and nd < best.get(v, _INF):
                best[v] = nd
                heapq.heappush(heap, (nd, v))
    return ball, dist


def all_balls(
    g: Graph,
    ell: int,
    *,
    tol: float = 0.0,
    with_radii: bool = False,
    engine: Optional[str] = None,
) -> Tuple[List[List[int]], Optional[List[float]]]:
    """``B(u, ell)`` for every vertex, batched (kernel-dispatched).

    Returns ``(balls, radii)`` with ``radii`` ``None`` unless requested.
    The kernel path runs a batched engine — the delta-stepping candidate
    queue on weighted graphs, a vectorized level BFS on unit weights —
    with reusable flat buffers instead of per-source allocation; ``engine``
    forces a specific kernel implementation (see
    :meth:`repro.graph.csr.CSRGraph.all_balls`; benchmarks use it to pit
    the engines against each other).  The pure path loops
    :func:`truncated_dijkstra_py`.  Ball contents and order are identical
    on every path.
    """
    if g.n == 0 or ell <= 0:
        # Same degenerate result on every path (the kernel short-circuits
        # identically before its radius computation).
        return (
            [[] for _ in range(g.n)],
            [0.0] * g.n if with_radii else None,
        )
    kernel = _kernel(g)
    if kernel is not None:
        return kernel.all_balls(
            ell, tol=tol, with_radii=with_radii, engine=engine
        )
    balls: List[List[int]] = []
    radii: Optional[List[float]] = [] if with_radii else None
    for u in g.vertices():
        ball, dist = truncated_dijkstra_py(g, u, min(ell, g.n))
        balls.append(ball)
        if with_radii:
            radii.append(_ball_radius_py(g, ball, dist, tol))
    return balls, radii


def _ball_radius_py(
    g: Graph, ball: List[int], dist: Dict[int, float], tol: float
) -> float:
    """Radius ``r_u(ell)`` for a pure-path ball (reference implementation).

    The boundary level is complete iff no vertex outside the ball lies
    within ``tol`` of the boundary distance; outside vertices at smaller
    distance cannot exist because balls are ``(dist, id)`` prefixes, so it
    suffices to scan the neighbours of ball members.
    """
    if not ball:
        raise ValueError("empty ball has no radius")
    dmax = dist[ball[-1]]
    complete = True
    for u in ball:
        du = dist[u]
        for v, w in g.neighbor_items(u):
            if v in dist:
                continue
            if du + w <= dmax + tol:
                complete = False
                break
        if not complete:
            break
    if complete:
        return dmax
    inner = [d for d in dist.values() if d < dmax - tol]
    return max(inner) if inner else 0.0


def shortest_path_tree(
    g: Graph, root: int, members: Optional[Sequence[int]] = None
) -> Dict[int, int]:
    """Shortest-path tree rooted at ``root`` as a ``child -> parent`` map.

    When ``members`` is given, the tree is restricted to that vertex set,
    which must be *shortest-path closed toward the root* (true for the
    paper's clusters ``C_A(w)``): every member's parent on the shortest path
    is then itself a member.  The root maps to itself.
    """
    dist, parent = dijkstra(g, root)
    if members is None:
        members = [v for v in g.vertices() if dist[v] < _INF]
    member_set = set(members)
    if root not in member_set:
        raise ValueError(f"root {root} not among tree members")
    tree: Dict[int, int] = {root: root}
    for v in members:
        if v == root:
            continue
        if dist[v] == _INF:
            raise ValueError(f"member {v} unreachable from root {root}")
        p = parent[v]
        # Walk up until we hit a member; for shortest-path-closed member
        # sets this loop exits immediately.
        while p is not None and p not in member_set:
            p = parent[p]
        if p is None:
            raise ValueError(
                f"member set is not shortest-path closed toward {root} at {v}"
            )
        tree[v] = p
    return tree


def multi_source_distances(g: Graph, sources: Sequence[int]) -> Tuple[List[float], List[int]]:
    """Distance to the nearest source, and that source, for every vertex.

    Returns ``(dist, nearest)``.  ``nearest[v]`` is the paper's ``p_A(v)``
    with ties broken *lexicographically*: among sources at equal distance
    from ``v``, the smallest source id wins — the heap carries
    ``(dist, source, vertex)`` keys so pops realize exactly that order.
    Duplicate sources are deduplicated up front (a repeated source carries
    no extra information, and deduplication keeps the seeding loop
    branch-free).  ``nearest[v] == -1`` when no source is reachable.
    Kernel-dispatched.
    """
    kernel = _kernel(g)
    if kernel is not None:
        return kernel.multi_source_distances(sources)
    return multi_source_distances_py(g, sources)


def multi_source_distances_py(
    g: Graph, sources: Sequence[int]
) -> Tuple[List[float], List[int]]:
    """Pure-Python multi-source Dijkstra (differential-test reference)."""
    dist = [_INF] * g.n
    nearest = [-1] * g.n
    heap: List[Tuple[float, int, int]] = []
    for s in sorted(set(sources)):
        dist[s] = 0.0
        nearest[s] = s
        heap.append((0.0, s, s))
    heapq.heapify(heap)
    while heap:
        d, src, u = heapq.heappop(heap)
        if (d, src) > (dist[u], nearest[u]):
            continue
        for v, w in g.neighbor_items(u):
            nd = d + w
            if nd < dist[v] or (nd == dist[v] and src < nearest[v]):
                dist[v] = nd
                nearest[v] = src
                heapq.heappush(heap, (nd, src, v))
    return dist, nearest


def bounded_distance(
    g: Graph, source: int, target: int, limit: float
) -> float:
    """``d(source, target)`` when at most ``limit``; ``inf`` otherwise.

    Uses the CSR kernel only when a *current* CSR mirror is already cached
    on ``g`` — never builds one, because the hot caller (the greedy
    spanner) queries a graph it is still mutating, where a per-call
    O(n + m) rebuild would dwarf the query.  Static graphs get the kernel
    by building it once via :func:`repro.graph.csr.csr_graph`.
    """
    if use_kernel() and g.n > 0:
        from .csr import cached_csr_graph

        kernel = cached_csr_graph(g)
        if kernel is not None:
            return kernel.bounded_distance(source, target, limit)
    return bounded_distance_py(g, source, target, limit)


def bounded_distance_py(
    g: Graph, source: int, target: int, limit: float
) -> float:
    """Pure-Python bounded-radius Dijkstra (differential-test reference)."""
    dist = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    seen: set = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in seen:
            continue
        seen.add(u)
        if u == target:
            return d
        if d > limit:
            return _INF
        for v, w in g.neighbor_items(u):
            nd = d + w
            if nd <= limit and nd < dist.get(v, _INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return _INF


def subgraph_dijkstra(
    g: Graph, root: int, members: Sequence[int]
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Dijkstra restricted to the subgraph induced by ``members``.

    Returns ``(dist, parent)`` maps over the member set (unreachable
    members absent; ``parent[root] == root``).  For shortest-path-closed
    member sets (the paper's clusters) the induced distances equal the
    global ones, which is what
    :meth:`repro.graph.metric.MetricView.restricted_spt_parents` validates.
    Kernel-dispatched; parent ties go to the smallest predecessor id on
    both paths.
    """
    kernel = _kernel(g)
    if kernel is not None:
        return kernel.subgraph_dijkstra(root, members)
    return subgraph_dijkstra_py(g, root, members)


def subgraph_dijkstra_py(
    g: Graph, root: int, members: Sequence[int]
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Pure-Python induced-subgraph Dijkstra (differential-test reference)."""
    member_set = set(members)
    if root not in member_set:
        raise ValueError(f"root {root} not among members")
    dist: Dict[int, float] = {root: 0.0}
    parent: Dict[int, int] = {root: root}
    settled: set = set()
    heap: List[Tuple[float, int]] = [(0.0, root)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if d > dist.get(u, _INF):
            continue
        settled.add(u)
        for v, w in g.neighbor_items(u):
            if v not in member_set:
                continue
            nd = d + w
            dv = dist.get(v, _INF)
            if nd < dv:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
            elif nd == dv and v not in settled and u < parent[v]:
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def path_length(g: Graph, path: Sequence[int]) -> float:
    """Total weight of a vertex path; validates that each hop is an edge."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += g.weight(u, v)
    return total
