"""Exact metric view used by the centralized preprocessing phase.

Compact routing schemes have two phases: a *centralized preprocessing* phase
that may inspect the whole graph, and a *distributed routing* phase that may
only touch local tables.  This module implements the global knowledge the
preprocessing phase is allowed to use: exact distances, shortest path
walking, vicinity balls and the normalized diameter ``D``.

Dense vs. lazy mode
-------------------
The original implementation eagerly built the full ``n x n`` distance
matrix, which caps experiments at small ``n`` (32 MB at ``n = 2000``,
quadratic beyond).  :class:`MetricView` now has two modes:

* ``mode="dense"`` — the eager all-pairs matrix, exactly as before
  (scipy's C Dijkstra when available, pure-Python otherwise, symmetrized).
  Best for small graphs and access patterns that genuinely read most pairs.
* ``mode="lazy"`` — a per-row distance oracle: rows are computed on demand
  through the CSR kernel (:mod:`repro.graph.csr`) or scipy's
  ``csgraph.dijkstra(indices=...)``, and LRU-cached.  Peak memory is
  ``O(cache_rows * n)`` instead of ``O(n^2)``, matching the preprocessing
  access pattern (balls, landmark columns, row blocks).

``mode="auto"`` (the default) picks dense up to ``dense_threshold``
vertices and lazy above, so existing small-graph callers see bit-identical
behaviour while large-``n`` benchmarks stop paying quadratic memory.
Whole-matrix consumers were rewritten against the row-oriented API
(:meth:`rows`, :meth:`columns`, :meth:`iter_row_blocks`,
:meth:`iter_bounded_rows`, :meth:`count_rows_below`); :attr:`matrix`
remains as an escape hatch that materializes (and keeps) the full
symmetrized matrix.

Canonical row orientation
-------------------------
On weighted graphs a float shortest-path sum depends on the accumulation
order, so the forward value ``d_fwd(u, v)`` (Dijkstra from ``u``) and the
reverse one ``d_fwd(v, u)`` can differ by one ulp at exact real ties.  All
of :meth:`row`, :meth:`d`, :meth:`rows`, :meth:`columns` and the block
iterators therefore return the **forward row orientation**: ``d(u, v)`` is
always the value computed from ``u``'s side, in every mode and on every
dispatch path (dense, lazy, CSR kernel, scipy, pure) — they are the same
least float64 fixpoint, hence bit-identical.  Consumers that compare
distances strictly (cluster membership, pivots) always read one
orientation consistently, which keeps every structure exact without the
old dense-mode ``min(dist, dist.T)`` rewrite that the lazy oracle could
not reproduce.  :attr:`matrix` still returns an exactly-symmetric matrix
for external code that expects one.

Floating point
--------------
Weighted graphs use float weights, so "is this edge on a shortest path?"
is decided with a relative tolerance (:attr:`MetricView.tol`).  All
structures derive shortest-path facts from the *same* oracle, which keeps
them mutually consistent.  In lazy mode the tolerance scale is the running
maximum over all finite distances computed up to the first tolerance read
(frozen afterwards, so band decisions stay self-consistent within a
build) — always within a factor of two of the dense scale, because any
eccentricity is at least half the diameter, without ever paying a full
all-pairs scan.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .core import Graph
from .shortest_paths import (
    dijkstra,
    dijkstra_py,
    subgraph_dijkstra,
    use_kernel,
)
from .trees import parents_from_pred_row

__all__ = ["MetricView"]

_INF = float("inf")


class MetricView:
    """Immutable exact-distance oracle over a graph.

    Parameters
    ----------
    g:
        The (connected) graph.
    use_scipy:
        Use ``scipy.sparse.csgraph.dijkstra`` for distance computations.
        The pure-Python path exists for environments without scipy and for
        differential testing.
    mode:
        ``"dense"`` (eager all-pairs matrix), ``"lazy"`` (on-demand
        LRU-cached rows) or ``"auto"`` (dense up to ``dense_threshold``
        vertices).
    dense_threshold:
        The ``auto`` cut-over size.
    cache_rows:
        Lazy-mode LRU capacity in rows; defaults to ``max(32, 4 sqrt(n))``
        so cached rows stay ``O(sqrt(n) * n)`` memory.
    """

    def __init__(
        self,
        g: Graph,
        use_scipy: bool = True,
        *,
        mode: str = "auto",
        dense_threshold: int = 2048,
        cache_rows: Optional[int] = None,
    ) -> None:
        if mode not in ("auto", "dense", "lazy"):
            raise ValueError(f"unknown MetricView mode {mode!r}")
        self.graph = g
        self.n = g.n
        self._use_scipy = bool(use_scipy)
        if mode == "auto":
            mode = "dense" if g.n <= dense_threshold else "lazy"
        self._mode = mode
        self._csr = None
        self._dist: Optional[np.ndarray] = None
        self._sym: Optional[np.ndarray] = None
        self._tol: Optional[float] = None
        self._scale_seen = 0.0
        #: forward rows computed so far (full-length distance rows).
        self.rows_computed = 0
        #: sources swept by the bounded (truncated) kernel engine.
        self.bounded_rows_computed = 0
        self._row_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._cache_rows = (
            cache_rows
            if cache_rows is not None
            else max(32, 4 * int(math.isqrt(max(1, g.n))))
        )
        self._diameter: Optional[float] = None
        self._stats: Optional[Tuple[bool, float, float]] = None
        self._next_hop: Optional[np.ndarray] = None
        #: batched SPT predecessor rows staged by prefetch_spt_parents,
        #: consumed (popped) by spt_parents.
        self._pred_rows: Dict[int, np.ndarray] = {}
        #: auto-build the O(n^2)-memory next-hop cache below this size
        self._next_hop_auto_threshold = 4096

        if self._mode == "dense":
            if self._use_scipy and g.n > 0 and g.m > 0:
                try:
                    from scipy.sparse.csgraph import (
                        dijkstra as csgraph_dijkstra,
                    )
                except ImportError:
                    self._use_scipy = False
                else:
                    self._csr = g.to_csr()
                    # Raw forward rows — the canonical orientation every
                    # mode shares (see the module docstring); the
                    # symmetrized escape hatch lives behind ``matrix``.
                    self._dist = csgraph_dijkstra(self._csr, directed=False)
            if self._dist is None:
                rows = []
                for u in g.vertices():
                    dist_u, _ = dijkstra_py(g, u)
                    rows.append(dist_u)
                self._dist = (
                    np.asarray(rows, dtype=float)
                    if rows
                    else np.zeros((0, 0), dtype=float)
                )
            self.rows_computed += g.n
            finite = self._dist[np.isfinite(self._dist)]
            scale = float(finite.max()) if finite.size else 1.0
            self._tol = 1e-9 * max(scale, 1.0)

    # ------------------------------------------------------------------
    # Mode and kernel plumbing
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"dense"`` or ``"lazy"`` (resolved, never ``"auto"``)."""
        return self._mode

    @property
    def is_lazy(self) -> bool:
        return self._mode == "lazy"

    def _kernel(self):
        """The CSR kernel of the graph, or ``None`` on the pure path."""
        if self.n == 0 or not use_kernel():
            return None
        from .csr import csr_graph

        return csr_graph(self.graph)

    @property
    def tol(self) -> float:
        """Absolute tolerance for shortest-path membership tests.

        Dense mode fixes the scale at construction (the true maximum
        finite distance).  Lazy mode derives it from the *running* maximum
        over every row computed up to the first tolerance read, then
        freezes it: any single eccentricity is at least half the diameter,
        so the lazy scale always sits within a factor of two of the dense
        one, and freezing keeps every strict-band decision in one
        structure build self-consistent (a tolerance that kept growing
        with later rows could make ``ball_radius`` disagree with the
        radii ``all_balls`` already returned).  A heuristic, like the
        tolerance itself — it only sets the order of magnitude.
        """
        if self._tol is not None:
            return self._tol
        if self._scale_seen == 0.0 and self.n > 0:
            self.row(0)  # seed the running maximum with one eccentricity
        self._tol = 1e-9 * max(self._scale_seen, 1.0)
        return self._tol

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def _compute_rows(self, sources: Sequence[int]) -> np.ndarray:
        """Distance rows for ``sources``, bypassing the cache."""
        sources = list(sources)
        if not sources:
            return np.zeros((0, self.n), dtype=np.float64)
        kernel = self._kernel()
        if kernel is not None:
            out = kernel.rows(sources, prefer_scipy=self._use_scipy)
        else:
            out = np.empty((len(sources), self.n), dtype=np.float64)
            for i, s in enumerate(sources):
                out[i] = dijkstra(self.graph, s)[0]
        self.rows_computed += len(sources)
        finite = out[np.isfinite(out)]
        if finite.size:
            self._scale_seen = max(self._scale_seen, float(finite.max()))
        return out

    def row(self, u: int) -> np.ndarray:
        """Read-only distance row of ``u`` (length ``n``)."""
        if self._dist is not None:
            return self._dist[u]
        cached = self._row_cache.get(u)
        if cached is not None:
            self._row_cache.move_to_end(u)
            return cached
        row = self._compute_rows([u])[0]
        self._row_cache[u] = row
        if len(self._row_cache) > self._cache_rows:
            self._row_cache.popitem(last=False)
        return row

    def d(self, u: int, v: int) -> float:
        """Exact distance between ``u`` and ``v``."""
        if self._dist is not None:
            return float(self._dist[u, v])
        return float(self.row(u)[v])

    def rows(self, sources: Sequence[int]) -> np.ndarray:
        """Distance rows for ``sources`` as a ``(len(sources), n)`` array."""
        sources = list(sources)
        if self._dist is not None:
            return self._dist[sources]
        missing = [s for s in sources if s not in self._row_cache]
        fresh: Dict[int, np.ndarray] = {}
        if missing:
            computed = self._compute_rows(missing)
            for s, row in zip(missing, computed):
                fresh[s] = row
        out = np.empty((len(sources), self.n), dtype=np.float64)
        for i, s in enumerate(sources):
            out[i] = fresh[s] if s in fresh else self.row(s)
        # Cache the fresh rows afterwards so assembling a batch larger
        # than the LRU capacity cannot evict rows mid-assembly.
        for s, row in fresh.items():
            self.row_cache_put(s, row)
        return out

    def row_cache_put(self, u: int, row: np.ndarray) -> None:
        """Insert a computed row into the lazy LRU cache (no-op when dense)."""
        if self._dist is not None:
            return
        self._row_cache[u] = row
        self._row_cache.move_to_end(u)
        while len(self._row_cache) > self._cache_rows:
            self._row_cache.popitem(last=False)

    def columns(self, members: Sequence[int]) -> np.ndarray:
        """Distance columns of ``members`` as an ``(n, len(members))`` array.

        ``columns(A)[v, j]`` is the canonical forward value ``d(a_j, v)``
        — the members' rows transposed, ``O(|members| * n)`` memory in
        lazy mode, which is exactly the landmark access pattern of the
        preprocessing phase.  Every consumer that compares these against
        row reads uses the same ``(… , v)`` orientation, so strict
        comparisons stay exact (see the module docstring).
        """
        return self.rows(members).T

    def iter_row_blocks(
        self, block_rows: Optional[int] = None
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(start, rows)`` blocks covering all sources in order.

        Dense mode yields the whole matrix as one zero-copy block; lazy
        mode computes transient blocks of ``block_rows`` rows (default
        sized so a block stays a few MB) without populating the row cache,
        so a full scan stays ``O(block * n)`` memory.
        """
        if self.n == 0:
            return
        if self._dist is not None:
            yield 0, self._dist
            return
        if block_rows is None:
            block_rows = max(1, (1 << 22) // max(1, 8 * self.n))
        for start in range(0, self.n, block_rows):
            stop = min(start + block_rows, self.n)
            yield start, self._compute_rows(range(start, stop))

    def iter_bounded_rows(
        self, limits, sources: Optional[Sequence[int]] = None
    ) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(u, verts, dists)`` with ``d(u, v) < limit`` per source.

        ``limits`` is a scalar or a per-source array; ``verts`` ascends by
        vertex id and covers exactly the vertices strictly closer than the
        source's limit (``inf`` sweeps the whole component).  This is the
        cluster-scan primitive of the Section 2 structures: with a lazy
        metric and the CSR kernel it runs the batched truncated
        delta-stepping engine — work proportional to the scanned
        neighbourhoods, never a full APSP — and otherwise it filters
        full rows (free in dense mode).
        """
        if sources is None:
            sources = range(self.n)
        sources = list(sources)
        lim = np.broadcast_to(
            np.asarray(limits, dtype=np.float64), (len(sources),)
        )
        if self._dist is None:
            kernel = self._kernel()
            if kernel is not None:
                self.bounded_rows_computed += len(sources)
                yield from kernel.bounded_rows(sources, lim)
                return
        for i, u in enumerate(sources):
            row = self.row(u)
            verts = np.flatnonzero(row < lim[i])
            yield u, verts, row[verts]

    def count_rows_below(
        self,
        thresholds: np.ndarray,
        sources: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """``out[i] = |{v : d(sources[i], v) < thresholds[v]}|``.

        The cluster-size count of Lemma 4 (all of ``V`` when ``sources``
        is omitted).  No vertex beyond ``max(thresholds)`` can ever be
        counted, so the lazy path scans bounded neighbourhoods through
        :meth:`iter_bounded_rows` instead of full rows; the dense path
        reads the matrix rows it already has.  Both count the exact same
        strict comparisons on the same canonical forward rows.
        """
        if sources is None:
            sources = range(self.n)
        sources = list(sources)
        if self._dist is not None:
            return (
                (self._dist[sources] < thresholds[None, :])
                .sum(axis=1)
                .astype(np.int64)
            )
        out = np.zeros(len(sources), dtype=np.int64)
        limit = float(thresholds.max()) if thresholds.size else 0.0
        for i, (_, verts, dists) in enumerate(
            self.iter_bounded_rows(limit, sources)
        ):
            out[i] = int((dists < thresholds[verts]).sum())
        return out

    @property
    def matrix(self) -> np.ndarray:
        """The full symmetrized ``n x n`` distance matrix (do not mutate).

        Escape hatch for external code that expects an exactly-symmetric
        all-pairs matrix: ``min(d_fwd, d_fwd.T)`` over the forward rows,
        materialized (and kept) on first access — ``O(n^2)`` memory, plus
        the raw forward matrix in lazy mode.  Internal consumers use the
        row-oriented API, which keeps the canonical forward orientation
        (see the module docstring) instead.
        """
        if self._sym is None:
            if self._dist is None:
                blocks = [block for _, block in self.iter_row_blocks()]
                self._dist = (
                    np.vstack(blocks)
                    if blocks
                    else np.zeros((0, 0), dtype=float)
                )
                self._row_cache.clear()
            self._sym = np.minimum(self._dist, self._dist.T)
        return self._sym

    # ------------------------------------------------------------------
    # Global scalar facts
    # ------------------------------------------------------------------
    def _scan_stats(self) -> Tuple[bool, float, float]:
        """``(all_finite, max_finite, min_finite_offdiag)`` over all pairs.

        One blockwise pass in lazy mode (cached); direct reads when dense.
        """
        if self._stats is None:
            all_finite = True
            dmax = 0.0
            dmin = _INF
            any_finite = False
            for start, block in self.iter_row_blocks():
                finite_mask = np.isfinite(block)
                if not finite_mask.all():
                    all_finite = False
                finite = block[finite_mask]
                if finite.size:
                    any_finite = True
                    dmax = max(dmax, float(finite.max()))
                    # Exclude the diagonal zeros from the minimum.
                    rows_idx, cols_idx = np.nonzero(finite_mask)
                    offdiag = block[finite_mask][
                        (rows_idx + start) != cols_idx
                    ]
                    if offdiag.size:
                        dmin = min(dmin, float(offdiag.min()))
            if not any_finite:
                dmax = 0.0
            self._stats = (all_finite, dmax, dmin)
        return self._stats

    def is_connected(self) -> bool:
        """True when every pairwise distance is finite."""
        if self._dist is not None:
            return bool(np.isfinite(self._dist).all())
        if self.n == 0:
            return True
        # Undirected graph: one row decides connectivity — no need for
        # the full blockwise scan (row 0 is cached; the tol estimate
        # computes it anyway).
        return bool(np.isfinite(self.row(0)).all())

    def diameter(self) -> float:
        """Maximum finite pairwise distance (cached — hot in Lemma 8)."""
        if self._diameter is None:
            if self._dist is not None:
                finite = self._dist[np.isfinite(self._dist)]
                self._diameter = float(finite.max()) if finite.size else 0.0
            else:
                self._diameter = self._scan_stats()[1]
        return self._diameter

    def normalized_diameter(self) -> float:
        """The paper's ``D = max d(u,v) / min_{u != v} d(u,v)``."""
        if self.n < 2:
            return 1.0
        dmin = self.min_pairwise_distance()
        dmax = self.diameter()
        if dmax <= 0:
            return 1.0
        if dmin <= 0:
            raise ValueError("graph contains distinct vertices at distance 0")
        return dmax / dmin

    def min_pairwise_distance(self) -> float:
        """``min_{u != v} d(u, v)`` (the paper's ``omega_min`` analogue)."""
        if self.n < 2:
            return 1.0
        if self._dist is not None:
            off_diag = self._dist[~np.eye(self.n, dtype=bool)]
            finite = off_diag[np.isfinite(off_diag)]
            return float(finite.min()) if finite.size else 1.0
        dmin = self._scan_stats()[2]
        return dmin if math.isfinite(dmin) else 1.0

    # ------------------------------------------------------------------
    # Shortest-path structure
    # ------------------------------------------------------------------
    def on_shortest_path(self, u: int, x: int, v: int) -> bool:
        """Whether ``x`` lies on some shortest ``u``–``v`` path."""
        return abs(self.d(u, x) + self.d(x, v) - self.d(u, v)) <= self.tol

    def is_tight_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` realizes the distance between u and v."""
        return abs(self.graph.weight(u, v) - self.d(u, v)) <= self.tol

    def tight_min_weight(self) -> float:
        """Minimum weight among edges lying on shortest paths.

        This is the paper's ``omega_min`` from Lemma 8: edges with
        ``w(u,v) > d(u,v)`` never appear on shortest paths and are ignored.
        With the CSR kernel available the scan is vectorized per distance
        row block; the scalar edge loop remains as the fallback.
        """
        kernel = self._kernel()
        if kernel is not None and self.graph.m > 0:
            tol = self.tol
            best = _INF
            indptr, indices, weights = (
                kernel.indptr,
                kernel.indices,
                kernel.weights,
            )
            for start, block in self.iter_row_blocks():
                for i in range(block.shape[0]):
                    u = start + i
                    lo, hi = indptr[u], indptr[u + 1]
                    if lo == hi:
                        continue
                    w_u = weights[lo:hi]
                    d_u = block[i, indices[lo:hi]]
                    tight = np.abs(w_u - d_u) <= tol
                    if tight.any():
                        best = min(best, float(w_u[tight].min()))
            if best is _INF or not math.isfinite(best):
                raise ValueError("graph has no shortest-path edges")
            return best
        weights = [
            w for u, v, w in self.graph.edges() if self.is_tight_edge(u, v)
        ]
        if not weights:
            raise ValueError("graph has no shortest-path edges")
        return min(weights)

    def build_next_hop_cache(self) -> None:
        """Precompute the full next-hop matrix (O(n^2) ints, O(mn) time).

        ``next_hop`` is the hot operation of sequence construction; the
        cache computes, for every source row at once, the neighbour with the
        smallest ``(d(neighbour, target), neighbour-id)`` among tight edges
        — identical tie-breaking to the scalar scan.
        """
        if self._next_hop is not None:
            return
        n = self.n
        nh = np.full((n, n), -1, dtype=np.int32)
        for u in range(n):
            best_d = np.full(n, _INF)
            row_u = self.row(u)
            # Ascending neighbour ids + strict improvement == ties to the
            # smaller id, matching the scalar rule.
            for x in sorted(self.graph.neighbors(u)):
                w = self.graph.weight(u, x)
                row_x = self.row(x)
                tight = np.abs(w + row_x - row_u) <= self.tol
                better = tight & (row_x < best_d)
                best_d[better] = row_x[better]
                nh[u, better] = x
            nh[u, u] = u
        self._next_hop = nh

    def next_hop(self, u: int, v: int) -> int:
        """First vertex after ``u`` on a shortest ``u``–``v`` path.

        Deterministic choice: among neighbours ``x`` with
        ``w(u,x) + d(x,v) = d(u,v)``, the one with the smallest
        ``(d(x,v), x)`` — i.e. maximal progress, ties to the smaller id.
        """
        if u == v:
            raise ValueError("next_hop undefined for u == v")
        # Auto-build only in dense mode: the cache loop reads the rows of
        # every vertex's neighbours, which a lazy metric would recompute
        # O(m) times.  Lazy callers get the scalar scan over LRU rows
        # (or may call build_next_hop_cache explicitly, eyes open).
        if (
            self._next_hop is None
            and self._dist is not None
            and self.n <= self._next_hop_auto_threshold
        ):
            self.build_next_hop_cache()
        if self._next_hop is not None:
            hop = int(self._next_hop[u, v])
            if hop < 0:
                raise ValueError(f"{v} unreachable from {u}")
            return hop
        target = self.d(u, v)
        if target == _INF:
            raise ValueError(f"{v} unreachable from {u}")
        best: Optional[Tuple[float, int]] = None
        for x, w in self.graph.neighbor_items(u):
            if abs(w + self.d(x, v) - target) <= self.tol:
                key = (self.d(x, v), x)
                if best is None or key < best:
                    best = key
        if best is None:
            raise RuntimeError(
                f"no tight edge out of {u} toward {v}; inconsistent metric"
            )
        return best[1]

    def prefetch_spt_parents(self, roots: Sequence[int]) -> None:
        """Stage predecessor rows for many roots in one batched sweep.

        Runs the kernel's (possibly multiprocess, see
        :mod:`repro.graph.parallel`) batched Dijkstra once over all
        ``roots`` and caches one predecessor row per root;
        :meth:`spt_parents` consumes the cache.  The rows come from the
        same scipy matrix the per-root path would use, so the resulting
        trees are bit-identical with or without prefetching.

        No-op (the per-root path stays authoritative) in dense mode —
        where ``spt_parents`` runs on the dense-precompute matrix, not
        the kernel's — and whenever scipy or the kernel is unavailable.
        """
        if self._csr is not None or not self._use_scipy:
            return
        kernel = self._kernel()
        if kernel is None:
            return
        missing = [r for r in dict.fromkeys(int(r) for r in roots)
                   if r not in self._pred_rows]
        if not missing:
            return
        rows = kernel.spt_pred_rows(missing)
        if rows is None:
            return
        for r, row in zip(missing, rows):
            self._pred_rows[r] = row

    def spt_parents(self, root: int) -> Dict[int, int]:
        """A shortest-path tree rooted at ``root`` as a child->parent map.

        Uses scipy's C Dijkstra when available (the hot path — schemes build
        hundreds of trees).  Any valid SPT serves tree routing; consistency
        with the distance oracle is guaranteed because distances agree.
        Rows staged by :meth:`prefetch_spt_parents` are consumed first.
        """
        staged = self._pred_rows.pop(root, None)
        if staged is not None:
            return parents_from_pred_row(root, staged)
        mat = self._csr
        if mat is None and self._use_scipy:
            kernel = self._kernel()
            if kernel is not None:
                mat = kernel._scipy_matrix()
        if mat is not None:
            from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

            _, pred = csgraph_dijkstra(
                mat, directed=False, indices=root,
                return_predecessors=True,
            )
            parents = {root: root}
            for v in range(self.n):
                if v != root and pred[v] >= 0:
                    parents[v] = int(pred[v])
            return parents
        dist, parent = dijkstra(self.graph, root)
        parents = {root: root}
        for v in range(self.n):
            if v != root and parent[v] is not None:
                parents[v] = parent[v]
        return parents

    def restricted_spt_parents(
        self, root: int, members: Sequence[int]
    ) -> Dict[int, int]:
        """SPT parents restricted to a shortest-path-closed member set.

        Used for cluster trees ``T_{C_A(w)}``: every member's SPT parent is
        itself a member (closure), so the restriction is a valid tree.

        Runs Dijkstra on the *induced subgraph* — work proportional to the
        cluster instead of the whole graph (flat-array CSR kernel when
        active, an equivalent pure loop otherwise) — and validates closure
        by checking the induced distances against the oracle's global
        distances: they coincide exactly when the member set realizes all
        its shortest paths internally.  Both dispatch paths apply the same
        criterion, so they accept and reject the same member sets.
        """
        member_set = set(members)
        if root not in member_set:
            raise ValueError(f"root {root} not among members")
        dist, parent = subgraph_dijkstra(self.graph, root, members)
        row = self.row(root)
        tol = self.tol
        out = {root: root}
        for v in members:
            if v == root:
                continue
            dv = dist.get(v, _INF)
            if not math.isfinite(dv) or abs(dv - float(row[v])) > tol:
                raise ValueError(
                    f"member set not shortest-path closed toward {root}: "
                    f"induced distance of {v} is {dv}, global is "
                    f"{float(row[v])}"
                )
            out[v] = parent[v]
        return out

    def shortest_path(self, u: int, v: int) -> List[int]:
        """A concrete shortest ``u``–``v`` path (via :meth:`next_hop`)."""
        path = [u]
        cur = u
        guard = 0
        while cur != v:
            cur = self.next_hop(cur, v)
            path.append(cur)
            guard += 1
            if guard > self.n:
                raise RuntimeError("shortest-path walk did not terminate")
        return path

    # ------------------------------------------------------------------
    # Vicinity balls
    # ------------------------------------------------------------------
    def ball(self, u: int, ell: int) -> List[int]:
        """``B(u, ell)``: the ``ell`` closest vertices in ``(dist, id)`` order.

        ``u`` itself is always first (distance 0).  When ``ell >= n`` the
        whole vertex set is returned.
        """
        if ell <= 0:
            return []
        row = self.row(u)
        order = np.lexsort((np.arange(self.n), row))
        ball: List[int] = []
        for idx in order:
            if not np.isfinite(row[idx]):
                break
            ball.append(int(idx))
            if len(ball) == ell:
                break
        return ball

    def all_balls(
        self, ell: int, *, with_radii: bool = True
    ) -> Tuple[List[List[int]], Optional[List[float]]]:
        """``B(u, ell)`` (and radii) for every vertex — the batched sweep.

        In lazy mode this goes through the CSR kernel's chunked
        :meth:`~repro.graph.csr.CSRGraph.all_balls`, so the whole family
        costs ``O(chunk * n)`` memory; dense mode reads the matrix rows it
        already has.  Each mode is internally consistent (balls match that
        mode's :meth:`ball`/:meth:`row`); across modes results coincide
        exactly on unweighted graphs, while weighted distances can differ
        from the symmetrized dense matrix by one ulp at exact float ties
        (see the module docstring).
        """
        if self.n == 0 or ell <= 0:
            return (
                [[] for _ in range(self.n)],
                [0.0] * self.n if with_radii else None,
            )
        if self._dist is None:
            kernel = self._kernel()
            if kernel is not None:
                return kernel.all_balls(
                    min(ell, self.n),
                    tol=self.tol,
                    with_radii=with_radii,
                    prefer_scipy=self._use_scipy,
                )
        balls = [self.ball(u, ell) for u in range(self.n)]
        radii = (
            [self.ball_radius(u, balls[u]) for u in range(self.n)]
            if with_radii
            else None
        )
        return balls, radii

    def ball_radius(self, u: int, ball: Sequence[int]) -> float:
        """The paper's ``r_u(ell)`` for a ball produced by :meth:`ball`.

        The largest radius ``r`` such that *every* vertex at distance exactly
        ``r`` from ``u`` belongs to the ball.  Because balls are
        ``(dist, id)``-prefixes, this is the boundary distance when the
        boundary level is fully contained, else the previous level.
        """
        from .csr import _radius_from_row

        return _radius_from_row(self.row(u), list(ball), self.tol)
