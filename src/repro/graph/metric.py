"""Exact all-pairs metric view used by the centralized preprocessing phase.

Compact routing schemes have two phases: a *centralized preprocessing* phase
that may inspect the whole graph, and a *distributed routing* phase that may
only touch local tables.  This module implements the global knowledge the
preprocessing phase is allowed to use: exact all-pairs distances, shortest
path walking, vicinity balls and the normalized diameter ``D``.

Distances are computed once (scipy's C Dijkstra when available, pure-Python
Dijkstra otherwise) and shared by every structure built on the same graph.

Floating point
--------------
Weighted graphs use float weights, so "is this edge on a shortest path?"
is decided with a relative tolerance (:attr:`MetricView.tol`).  All structures
derive shortest-path facts from the *same* distance matrix, which keeps them
mutually consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core import Graph
from .shortest_paths import dijkstra

__all__ = ["MetricView"]

_INF = float("inf")


class MetricView:
    """Immutable exact-distance oracle over a graph.

    Parameters
    ----------
    g:
        The (connected) graph.
    use_scipy:
        Use ``scipy.sparse.csgraph.dijkstra`` for the all-pairs computation.
        The pure-Python path exists for environments without scipy and for
        differential testing.
    """

    def __init__(self, g: Graph, use_scipy: bool = True) -> None:
        self.graph = g
        self.n = g.n
        self._csr = None
        if use_scipy and g.n > 0 and g.m > 0:
            from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

            self._csr = g.to_csr()
            dist = csgraph_dijkstra(self._csr, directed=False)
            # Per-source float rounding makes dist marginally asymmetric;
            # strict comparisons (cluster membership) need exact symmetry.
            self._dist = np.minimum(dist, dist.T)
        else:
            rows = []
            for u in g.vertices():
                dist_u, _ = dijkstra(g, u)
                rows.append(dist_u)
            self._dist = (
                np.asarray(rows, dtype=float)
                if rows
                else np.zeros((0, 0), dtype=float)
            )
        finite = self._dist[np.isfinite(self._dist)]
        scale = float(finite.max()) if finite.size else 1.0
        #: absolute tolerance for shortest-path membership tests
        self.tol = 1e-9 * max(scale, 1.0)
        self._next_hop: Optional[np.ndarray] = None
        #: auto-build the O(n^2)-memory next-hop cache below this size
        self._next_hop_auto_threshold = 4096

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def d(self, u: int, v: int) -> float:
        """Exact distance between ``u`` and ``v``."""
        return float(self._dist[u, v])

    def row(self, u: int) -> np.ndarray:
        """Read-only distance row of ``u`` (length ``n``)."""
        return self._dist[u]

    @property
    def matrix(self) -> np.ndarray:
        """The full ``n x n`` distance matrix (do not mutate)."""
        return self._dist

    def is_connected(self) -> bool:
        """True when every pairwise distance is finite."""
        return bool(np.isfinite(self._dist).all())

    def diameter(self) -> float:
        """Maximum finite pairwise distance."""
        finite = self._dist[np.isfinite(self._dist)]
        return float(finite.max()) if finite.size else 0.0

    def normalized_diameter(self) -> float:
        """The paper's ``D = max d(u,v) / min_{u != v} d(u,v)``."""
        if self.n < 2:
            return 1.0
        off_diag = self._dist[~np.eye(self.n, dtype=bool)]
        finite = off_diag[np.isfinite(off_diag)]
        if finite.size == 0:
            return 1.0
        dmin = float(finite.min())
        dmax = float(finite.max())
        if dmin <= 0:
            raise ValueError("graph contains distinct vertices at distance 0")
        return dmax / dmin

    def min_pairwise_distance(self) -> float:
        """``min_{u != v} d(u, v)`` (the paper's ``omega_min`` analogue)."""
        if self.n < 2:
            return 1.0
        off_diag = self._dist[~np.eye(self.n, dtype=bool)]
        finite = off_diag[np.isfinite(off_diag)]
        return float(finite.min()) if finite.size else 1.0

    # ------------------------------------------------------------------
    # Shortest-path structure
    # ------------------------------------------------------------------
    def on_shortest_path(self, u: int, x: int, v: int) -> bool:
        """Whether ``x`` lies on some shortest ``u``–``v`` path."""
        return abs(self.d(u, x) + self.d(x, v) - self.d(u, v)) <= self.tol

    def is_tight_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` realizes the distance between u and v."""
        return abs(self.graph.weight(u, v) - self.d(u, v)) <= self.tol

    def tight_min_weight(self) -> float:
        """Minimum weight among edges lying on shortest paths.

        This is the paper's ``omega_min`` from Lemma 8: edges with
        ``w(u,v) > d(u,v)`` never appear on shortest paths and are ignored.
        """
        weights = [
            w for u, v, w in self.graph.edges() if self.is_tight_edge(u, v)
        ]
        if not weights:
            raise ValueError("graph has no shortest-path edges")
        return min(weights)

    def build_next_hop_cache(self) -> None:
        """Precompute the full next-hop matrix (O(n^2) ints, O(mn) time).

        ``next_hop`` is the hot operation of sequence construction; the
        cache computes, for every source row at once, the neighbour with the
        smallest ``(d(neighbour, target), neighbour-id)`` among tight edges
        — identical tie-breaking to the scalar scan.
        """
        if self._next_hop is not None:
            return
        n = self.n
        nh = np.full((n, n), -1, dtype=np.int32)
        for u in range(n):
            best_d = np.full(n, _INF)
            row_u = self._dist[u]
            # Ascending neighbour ids + strict improvement == ties to the
            # smaller id, matching the scalar rule.
            for x in sorted(self.graph.neighbors(u)):
                w = self.graph.weight(u, x)
                row_x = self._dist[x]
                tight = np.abs(w + row_x - row_u) <= self.tol
                better = tight & (row_x < best_d)
                best_d[better] = row_x[better]
                nh[u, better] = x
            nh[u, u] = u
        self._next_hop = nh

    def next_hop(self, u: int, v: int) -> int:
        """First vertex after ``u`` on a shortest ``u``–``v`` path.

        Deterministic choice: among neighbours ``x`` with
        ``w(u,x) + d(x,v) = d(u,v)``, the one with the smallest
        ``(d(x,v), x)`` — i.e. maximal progress, ties to the smaller id.
        """
        if u == v:
            raise ValueError("next_hop undefined for u == v")
        if self._next_hop is None and self.n <= self._next_hop_auto_threshold:
            self.build_next_hop_cache()
        if self._next_hop is not None:
            hop = int(self._next_hop[u, v])
            if hop < 0:
                raise ValueError(f"{v} unreachable from {u}")
            return hop
        target = self.d(u, v)
        if target == _INF:
            raise ValueError(f"{v} unreachable from {u}")
        best: Optional[Tuple[float, int]] = None
        for x, w in self.graph.neighbor_items(u):
            if abs(w + self.d(x, v) - target) <= self.tol:
                key = (self.d(x, v), x)
                if best is None or key < best:
                    best = key
        if best is None:
            raise RuntimeError(
                f"no tight edge out of {u} toward {v}; inconsistent metric"
            )
        return best[1]

    def spt_parents(self, root: int) -> Dict[int, int]:
        """A shortest-path tree rooted at ``root`` as a child->parent map.

        Uses scipy's C Dijkstra when available (the hot path — schemes build
        hundreds of trees).  Any valid SPT serves tree routing; consistency
        with :attr:`matrix` is guaranteed because distances agree.
        """
        if self._csr is not None:
            from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

            _, pred = csgraph_dijkstra(
                self._csr, directed=False, indices=root,
                return_predecessors=True,
            )
            parents = {root: root}
            for v in range(self.n):
                if v != root and pred[v] >= 0:
                    parents[v] = int(pred[v])
            return parents
        from .shortest_paths import dijkstra as py_dijkstra

        dist, parent = py_dijkstra(self.graph, root)
        parents = {root: root}
        for v in range(self.n):
            if v != root and parent[v] is not None:
                parents[v] = parent[v]
        return parents

    def restricted_spt_parents(
        self, root: int, members: Sequence[int]
    ) -> Dict[int, int]:
        """SPT parents restricted to a shortest-path-closed member set.

        Used for cluster trees ``T_{C_A(w)}``: every member's SPT parent is
        itself a member (closure), so the restriction is a valid tree.
        """
        parents = self.spt_parents(root)
        member_set = set(members)
        if root not in member_set:
            raise ValueError(f"root {root} not among members")
        out = {root: root}
        for v in members:
            if v == root:
                continue
            p = parents.get(v)
            if p is None:
                raise ValueError(f"member {v} unreachable from {root}")
            if p not in member_set:
                raise ValueError(
                    f"member set not shortest-path closed toward {root}: "
                    f"parent {p} of {v} is not a member"
                )
            out[v] = p
        return out

    def shortest_path(self, u: int, v: int) -> List[int]:
        """A concrete shortest ``u``–``v`` path (via :meth:`next_hop`)."""
        path = [u]
        cur = u
        guard = 0
        while cur != v:
            cur = self.next_hop(cur, v)
            path.append(cur)
            guard += 1
            if guard > self.n:
                raise RuntimeError("shortest-path walk did not terminate")
        return path

    # ------------------------------------------------------------------
    # Vicinity balls
    # ------------------------------------------------------------------
    def ball(self, u: int, ell: int) -> List[int]:
        """``B(u, ell)``: the ``ell`` closest vertices in ``(dist, id)`` order.

        ``u`` itself is always first (distance 0).  When ``ell >= n`` the
        whole vertex set is returned.
        """
        if ell <= 0:
            return []
        row = self._dist[u]
        order = np.lexsort((np.arange(self.n), row))
        ball: List[int] = []
        for idx in order:
            if not np.isfinite(row[idx]):
                break
            ball.append(int(idx))
            if len(ball) == ell:
                break
        return ball

    def ball_radius(self, u: int, ball: Sequence[int]) -> float:
        """The paper's ``r_u(ell)`` for a ball produced by :meth:`ball`.

        The largest radius ``r`` such that *every* vertex at distance exactly
        ``r`` from ``u`` belongs to the ball.  Because balls are
        ``(dist, id)``-prefixes, this is the boundary distance when the
        boundary level is fully contained, else the previous level.
        """
        if not ball:
            raise ValueError("empty ball has no radius")
        row = self._dist[u]
        dmax = float(row[ball[-1]])
        at_dmax_total = int(np.count_nonzero(np.abs(row - dmax) <= self.tol))
        at_dmax_in_ball = sum(
            1 for b in ball if abs(row[b] - dmax) <= self.tol
        )
        if at_dmax_in_ball == at_dmax_total:
            return dmax
        inner = [float(row[b]) for b in ball if row[b] < dmax - self.tol]
        return max(inner) if inner else 0.0
