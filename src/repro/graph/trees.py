"""Rooted trees extracted from shortest-path computations.

Tree routing (Lemma 3) and the cluster trees ``T_{C_A(w)}`` of Section 4 all
operate on rooted trees whose vertex set may be a sparse subset of the graph.
:class:`RootedTree` normalizes a ``child -> parent`` map into children lists,
subtree sizes and depths with deterministic ordering, ready for the
heavy-path decomposition performed by
:mod:`repro.routing.tree_routing`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["RootedTree", "parents_from_pred_row"]


def parents_from_pred_row(root: int, pred: Sequence[int]) -> Dict[int, int]:
    """A ``child -> parent`` map from a scipy predecessor row.

    ``pred`` is one row of ``csgraph.dijkstra(...,
    return_predecessors=True)``: negative entries mark the root and
    unreachable vertices.  Produces exactly the map
    :meth:`repro.graph.metric.MetricView.spt_parents` builds from the
    same row — batched SPT construction (the parallel tier's landmark
    prefetch) and the per-root path share this one conversion so their
    trees are identical.
    """
    parents = {root: root}
    for v, p in enumerate(pred):
        if v != root and p >= 0:
            parents[v] = int(p)
    return parents


class RootedTree:
    """A rooted tree over (a subset of) graph vertices.

    Parameters
    ----------
    parent:
        ``child -> parent`` map; the root maps to itself.  Edge weights may
        be provided for weighted path-length computations.
    weight:
        Optional ``child -> weight-of-edge-to-parent`` map.
    """

    def __init__(
        self,
        parent: Dict[int, int],
        weight: Optional[Dict[int, float]] = None,
    ) -> None:
        roots = [v for v, p in parent.items() if v == p]
        if len(roots) != 1:
            raise ValueError(
                f"parent map must contain exactly one root, found {roots}"
            )
        self.root = roots[0]
        self.parent = dict(parent)
        self.weight = dict(weight) if weight is not None else None
        self.children: Dict[int, List[int]] = {v: [] for v in parent}
        for v, p in parent.items():
            if v != self.root:
                if p not in self.children:
                    raise ValueError(f"parent {p} of {v} is not a tree vertex")
                self.children[p].append(v)
        for kids in self.children.values():
            kids.sort()
        self._order = self._topo_order()
        if len(self._order) != len(parent):
            raise ValueError("parent map contains a cycle or unreachable vertex")
        self.size = self._subtree_sizes()
        self.depth = self._depths()

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> List[int]:
        """Tree vertices in root-first (topological) order."""
        return list(self._order)

    def __len__(self) -> int:
        return len(self.parent)

    def __contains__(self, v: int) -> bool:
        return v in self.parent

    def heavy_child(self, v: int) -> Optional[int]:
        """The child with the largest subtree (ties to smallest id)."""
        kids = self.children[v]
        if not kids:
            return None
        return max(kids, key=lambda c: (self.size[c], -c))

    def path_to_root(self, v: int) -> List[int]:
        """Vertices from ``v`` up to (and including) the root."""
        path = [v]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path

    def tree_path(self, u: int, v: int) -> List[int]:
        """The unique ``u``–``v`` path in the tree."""
        up = self.path_to_root(u)
        vp = self.path_to_root(v)
        up_set = {x: i for i, x in enumerate(up)}
        for j, x in enumerate(vp):
            if x in up_set:
                return up[: up_set[x] + 1] + vp[:j][::-1]
        raise RuntimeError("tree paths to root do not meet; corrupt tree")

    def tree_distance(self, u: int, v: int) -> float:
        """Weighted length of the tree path (hops when unweighted)."""
        path = self.tree_path(u, v)
        if self.weight is None:
            return float(len(path) - 1)
        total = 0.0
        for a, b in zip(path, path[1:]):
            child = a if self.parent.get(a) == b else b
            total += self.weight[child]
        return total

    # ------------------------------------------------------------------
    def _topo_order(self) -> List[int]:
        order = [self.root]
        i = 0
        while i < len(order):
            order.extend(self.children[order[i]])
            i += 1
        return order

    def _subtree_sizes(self) -> Dict[int, int]:
        size = {v: 1 for v in self.parent}
        for v in reversed(self._order):
            if v != self.root:
                size[self.parent[v]] += size[v]
        return size

    def _depths(self) -> Dict[int, int]:
        depth = {self.root: 0}
        for v in self._order:
            if v != self.root:
                depth[v] = depth[self.parent[v]] + 1
        return depth
