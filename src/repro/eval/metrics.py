"""Space accounting helpers and scaling-exponent estimation.

The paper states table sizes in ``Õ(n^e)`` words (or bits).  Benchmarks
report measured *words* (see :func:`repro.routing.model.words_of`) and, for
the scaling experiment, fit the growth exponent ``e`` of
``table_words ≈ c * n^e`` from a sweep over ``n`` — the reproduction's
analogue of checking the paper's ``n^{2/3}`` / ``n^{1/3}`` columns.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["words_to_bits", "fit_exponent", "polylog_normalized_exponent"]


def words_to_bits(words: int, n: int) -> int:
    """Approximate bit cost of ``words`` machine words on an ``n``-vertex graph.

    A word holds a vertex id, port or distance: ``ceil(log2 n)`` bits.
    """
    return words * max(1, math.ceil(math.log2(max(n, 2))))


def fit_exponent(
    sizes: Sequence[int], values: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares fit of ``values ≈ c * sizes^e``; returns ``(e, c)``."""
    import numpy as np

    if len(sizes) != len(values) or len(sizes) < 2:
        raise ValueError("need at least two (size, value) points")
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.asarray(values, dtype=float))
    e, logc = np.polyfit(xs, ys, 1)
    return float(e), float(math.exp(logc))


def polylog_normalized_exponent(
    sizes: Sequence[int], values: Sequence[float], log_power: float = 1.0
) -> float:
    """Exponent fit after dividing out a ``log^p n`` factor.

    The paper's bounds are ``Õ(n^e)`` = ``n^e * polylog``; removing one log
    factor before fitting brings the measured exponent closer to the
    asymptotic one at reproduction scale.
    """
    adjusted = [
        v / (math.log2(max(s, 2)) ** log_power)
        for s, v in zip(sizes, values)
    ]
    e, _ = fit_exponent(sizes, adjusted)
    return e
