"""Workload generation: which (source, target) pairs to route.

The paper's guarantees are worst case over all pairs, so the default
evaluation routes either *all* ordered pairs (small graphs) or a seeded
uniform sample; a distance-stratified sampler is provided so stretch can be
reported per distance regime (local traffic exercises ball routing, distant
traffic exercises the techniques).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Tuple

from ..graph.core import Graph
from ..graph.metric import MetricView

__all__ = [
    "FAMILIES",
    "family_graph",
    "all_pairs",
    "sample_pairs",
    "stratified_pairs",
]

#: the benchmark/CLI graph families (also the preset names of the specs)
FAMILIES = ["er", "grid", "ba", "geo"]


def family_graph(
    family: str, n: int, seed: int = 0, *, weighted: bool = False
) -> Graph:
    """The canonical test graph of one family at size ``n``.

    One definition shared by the CLI, the preset-frontier recorder and
    the benchmarks, so "thm11 on er at n=200" means the same graph
    everywhere.  ``geo`` graphs are intrinsically weighted (Euclidean
    edge lengths); the ``weighted`` flag is ignored there.
    """
    from ..graph.generators import (
        erdos_renyi,
        grid,
        preferential_attachment,
        random_geometric,
        with_random_weights,
    )

    if family == "er":
        g = erdos_renyi(n, 7.0 / max(n - 1, 1), seed=seed)
    elif family == "grid":
        side = max(2, int(round(n ** 0.5)))
        g = grid(side, side)
    elif family == "ba":
        g = preferential_attachment(n, 2, seed=seed)
    elif family == "geo":
        return random_geometric(n, 2.6 / n ** 0.5, seed=seed)
    else:
        raise ValueError(
            f"unknown graph family {family!r}; expected one of {FAMILIES}"
        )
    if weighted:
        g = with_random_weights(g, seed=seed + 1, low=1.0, high=8.0)
    return g


def all_pairs(n: int) -> Iterator[Tuple[int, int]]:
    """Every ordered pair of distinct vertices."""
    for u in range(n):
        for v in range(n):
            if u != v:
                yield (u, v)


def sample_pairs(n: int, count: int, seed: int = 0) -> List[Tuple[int, int]]:
    """``count`` uniform ordered pairs of distinct vertices (seeded)."""
    if n < 2:
        return []
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        u = rng.randrange(n)
        v = rng.randrange(n - 1)
        if v >= u:
            v += 1
        pairs.append((u, v))
    return pairs


def stratified_pairs(
    metric: MetricView,
    per_bucket: int,
    buckets: int = 4,
    seed: int = 0,
) -> Dict[str, List[Tuple[int, int]]]:
    """Pairs grouped into ``buckets`` distance quantiles.

    Returns ``{"q1": [...], ...}`` with up to ``per_bucket`` pairs each,
    from nearest (``q1``) to farthest (``q<buckets>``).  On small-diameter
    unweighted graphs adjacent quantile edges can coincide; buckets that end
    up empty because their range collapsed are dropped from the result.
    """
    import numpy as np

    n = metric.n
    rng = random.Random(seed)
    # Blockwise row scan: quantile edges come from the row-oriented API so
    # a lazy metric never materializes (and pins) the dense matrix here.
    positive_blocks = []
    for _, block in metric.iter_row_blocks():
        finite = block[np.isfinite(block)]
        positive_blocks.append(finite[finite > 0])
    positive = (
        np.concatenate(positive_blocks)
        if positive_blocks
        else np.zeros(0)
    )
    if positive.size == 0:
        return {}
    edges = np.quantile(positive, np.linspace(0, 1, buckets + 1))
    out: Dict[str, List[Tuple[int, int]]] = {
        f"q{i+1}": [] for i in range(buckets)
    }
    attempts = 0
    max_attempts = 200 * per_bucket * buckets
    while attempts < max_attempts and any(
        len(v) < per_bucket for v in out.values()
    ):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        d = metric.d(u, v)
        # rightmost bucket whose interval contains d
        idx = int(np.searchsorted(edges, d, side="right")) - 1
        idx = min(max(idx, 0), buckets - 1)
        bucket = out[f"q{idx+1}"]
        if len(bucket) < per_bucket:
            bucket.append((u, v))
    return {key: pairs for key, pairs in out.items() if pairs}
