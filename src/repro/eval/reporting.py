"""Paper-style text tables for benchmark output.

Each benchmark prints the table or figure series it regenerates; these
helpers keep the formatting consistent and embed the paper's *theoretical*
reference rows next to measured ones (for comparators we do not reimplement,
e.g. Abraham–Gavoille and Chechik — see DESIGN.md substitutions).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["banner", "reference_row", "table", "PAPER_TABLE1_REFERENCE"]

#: The paper's Table 1 reference rows (scheme, graph class, stretch, table
#: size) — printed alongside measured numbers.
PAPER_TABLE1_REFERENCE: List[tuple] = [
    ("Abraham-Gavoille [1]", "unweighted", "(2,1)", "Õ(n^3/4)  [reference only]"),
    ("Thorup-Zwick [21] k=2", "weighted", "3", "Õ(n^1/2)"),
    ("Thorup-Zwick [21] k=3", "weighted", "7", "Õ(n^1/3)"),
    ("Chechik [10]", "weighted", "10.52", "Õ(n^1/4 logD) [reference only]"),
    ("Theorem 10", "unweighted", "(2+eps,1)", "Õ(n^2/3 /eps)"),
    ("Theorem 13 (l=3)", "unweighted", "(2 1/3+eps,2)", "Õ(n^3/5 /eps)"),
    ("Theorem 15 (l=2)", "unweighted", "(4+eps,2)", "Õ(n^2/5 /eps)"),
    ("Theorem 11", "weighted", "5+eps", "Õ(n^1/3 logD /eps)"),
    ("Theorem 16 (k=4)", "weighted", "9+eps", "Õ(n^1/4 logD /eps)"),
]


def banner(title: str, width: int = 100) -> str:
    """A section banner line."""
    pad = max(0, width - len(title) - 4)
    return f"== {title} {'=' * pad}"


def reference_row(entry: tuple) -> str:
    """One Table 1 reference row."""
    scheme, graph, stretch, size = entry
    return f"   [paper] {scheme:<26} {graph:<11} stretch={stretch:<14} tables={size}"


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width text table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
