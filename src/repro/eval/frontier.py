"""Per-preset stretch/size frontiers: calibrate presets from data.

The workload-aware presets (``SchemeSpec.presets``) tune the ball-size
constant ``alpha`` per graph family.  Until this module they were
hand-tuned; now the harness can *record* the frontier each preset sits
on — for a sweep of ``alpha`` values on one family's graph, the measured
(max stretch, average table words) trade-off plus feasibility (a too-thin
``alpha`` fails the Lemma 6 coloring) — and pick the data-driven value:

* :func:`alpha_frontier` — sweep ``alpha`` for one scheme on one graph,
  sharing the substrate (metric, ports) across the sweep so only the
  ball-dependent work is repaid per point,
* :func:`preset_frontiers` — one frontier per graph family, on the same
  canonical family graphs the CLI builds
  (:func:`repro.eval.workloads.family_graph`),
* :func:`calibrate_alpha` — the recommendation: the cheapest feasible
  point whose measured stretch stays within the scheme's advertised
  bound.

``benchmarks/bench_presets.py`` records the frontiers into
``BENCH_kernel.json`` (key ``preset_frontier``) next to the registered
hand-tuned values, closing the PR 4 ROADMAP gap ("calibrate presets from
recorded per-preset stretch/size frontiers instead of hand-tuning").
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..graph.core import Graph
from .workloads import FAMILIES, family_graph, sample_pairs

__all__ = [
    "FrontierPoint",
    "alpha_frontier",
    "preset_frontiers",
    "calibrate_alpha",
]

#: the default calibration sweep around the registered alpha defaults
DEFAULT_ALPHAS = (0.5, 0.75, 1.0, 1.25, 1.5)


@dataclass(frozen=True)
class FrontierPoint:
    """One measured point of a scheme's alpha frontier on one graph."""

    family: str
    alpha: float
    #: False when the build failed (e.g. Lemma 6 coloring infeasible)
    feasible: bool
    #: the failure message of an infeasible point, "" otherwise
    error: str = ""
    max_stretch: float = 0.0
    avg_stretch: float = 0.0
    #: measured `routed - bound_alpha * d` worst case (<= beta means the
    #: advertised (alpha, beta) guarantee held on this workload)
    max_additive_over: float = 0.0
    within_bound: bool = False
    avg_table_words: float = 0.0
    max_table_words: int = 0
    build_seconds: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)


def alpha_frontier(
    graph: Graph,
    scheme_name: str,
    *,
    family: str = "?",
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    pairs: int = 200,
    seed: int = 0,
) -> List[FrontierPoint]:
    """Sweep ``alpha`` for one scheme on one graph; one point per value.

    The substrate (metric, ports, and every alpha-independent artifact)
    is shared across the sweep through a
    :class:`~repro.api.SubstrateCache`, so each point pays only the
    ball-dependent marginal cost — the same reuse a production
    calibration run would get.  Infeasible points are recorded, not
    skipped: the frontier's *left edge* is exactly what calibration
    needs to know.  Only :class:`ColoringError` counts as infeasible —
    it is the signal "balls too thin for this alpha"; any other build
    failure (wrong graph class, a scheme regression) propagates, so a
    bug can never masquerade as calibration data.
    """
    from ..api import SubstrateCache, build
    from ..structures.coloring import ColoringError

    cache = SubstrateCache()
    workload = sample_pairs(graph.n, pairs, seed=seed + 1)
    points: List[FrontierPoint] = []
    for alpha in alphas:
        try:
            session = build(
                scheme_name, graph, cache=cache, seed=seed, alpha=alpha
            )
        except ColoringError as exc:
            points.append(FrontierPoint(
                family=family, alpha=float(alpha),
                feasible=False, error=str(exc),
            ))
            continue
        report = session.measure(workload)
        stats = session.stats()
        _, beta = session.stretch_bound()
        points.append(FrontierPoint(
            family=family,
            alpha=float(alpha),
            feasible=True,
            max_stretch=round(report.max_stretch, 4),
            avg_stretch=round(report.avg_stretch, 4),
            max_additive_over=round(report.max_additive_over, 4),
            within_bound=report.max_additive_over <= beta + 1e-9,
            avg_table_words=round(stats.avg_table_words, 1),
            max_table_words=stats.max_table_words,
            build_seconds=round(session.build_seconds, 4),
        ))
    return points


def preset_frontiers(
    scheme_name: str,
    *,
    n: int,
    families: Sequence[str] = tuple(FAMILIES),
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    pairs: int = 200,
    seed: int = 0,
) -> Dict[str, List[FrontierPoint]]:
    """One alpha frontier per graph family (the per-preset record).

    Graphs come from :func:`repro.eval.workloads.family_graph` with the
    scheme's preferred weighting — exactly what the CLI builds for
    ``--family X``, so the recorded frontier calibrates the preset the
    CLI will actually apply.
    """
    from ..api import get_spec

    spec = get_spec(scheme_name)
    spec.param("alpha")  # fail fast on schemes without the knob
    out: Dict[str, List[FrontierPoint]] = {}
    for family in families:
        weighted = spec.prefers_weighted and family != "geo"
        graph = family_graph(family, n, seed, weighted=weighted)
        if not spec.weighted_capable and not graph.is_unweighted():
            continue  # e.g. thm10 on geo: no preset to calibrate
        out[family] = alpha_frontier(
            graph, scheme_name,
            family=family, alphas=alphas, pairs=pairs, seed=seed,
        )
    return out


def calibrate_alpha(
    points: Sequence[FrontierPoint], *, stretch_slack: float = 0.10
) -> Optional[float]:
    """The data-driven preset value for one recorded frontier.

    Selection is stretch-targeted: among feasible, bound-respecting
    points, find the best (smallest) *measured* max stretch anywhere on
    the sweep, keep the points within ``stretch_slack`` of it, and pick
    the one with the smallest average table size (ties toward smaller
    ``alpha`` — thinner balls).  Merely being inside the advertised
    bound cannot be the criterion: the theorems' bounds are loose at
    reproduction scale, every swept point clears them, and the
    recommendation would degenerate to wherever the sweep happened to
    start — measuring the grid, not the family.  The stretch target is
    what the hand-tuned presets were chasing (grids need fatter balls
    to route well, hubs do not), so this is the knob the data can
    actually re-derive.

    One guard on top: an all-feasible sweep has not shown its
    infeasible left edge (no ``ColoringError`` point recorded), so its
    leftmost point is excluded — a sweep minimum is only trustworthy
    once the sweep demonstrably reaches past it.  ``None`` when no
    point qualifies.
    """
    eligible = [p for p in points if p.feasible and p.within_bound]
    if not eligible:
        return None
    if not any(not p.feasible for p in points):
        min_alpha = min(p.alpha for p in points)
        eligible = [p for p in eligible if p.alpha != min_alpha]
        if not eligible:
            return None
    target = min(p.max_stretch for p in eligible)
    near_best = [
        p for p in eligible
        if p.max_stretch <= target * (1.0 + stretch_slack)
    ]
    best = min(near_best, key=lambda p: (p.avg_table_words, p.alpha))
    return best.alpha
