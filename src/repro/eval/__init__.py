"""Evaluation harness: workloads, measurement, space accounting, reporting."""

from .frontier import (
    FrontierPoint,
    alpha_frontier,
    calibrate_alpha,
    preset_frontiers,
)
from .harness import Evaluation, OracleEvaluation, evaluate_oracle, evaluate_scheme
from .metrics import fit_exponent, polylog_normalized_exponent, words_to_bits
from .reporting import PAPER_TABLE1_REFERENCE, banner, reference_row, table
from .validation import ValidationResult, validate_scheme
from .workloads import (
    FAMILIES,
    all_pairs,
    family_graph,
    sample_pairs,
    stratified_pairs,
)

__all__ = [
    "Evaluation",
    "OracleEvaluation",
    "evaluate_oracle",
    "evaluate_scheme",
    "FrontierPoint",
    "alpha_frontier",
    "calibrate_alpha",
    "preset_frontiers",
    "fit_exponent",
    "polylog_normalized_exponent",
    "words_to_bits",
    "PAPER_TABLE1_REFERENCE",
    "banner",
    "reference_row",
    "table",
    "ValidationResult",
    "validate_scheme",
    "FAMILIES",
    "all_pairs",
    "family_graph",
    "sample_pairs",
    "stratified_pairs",
]
