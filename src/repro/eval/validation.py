"""Structural validation of a built routing scheme.

``validate_scheme`` is the release-quality checklist a scheme must pass
before being trusted: labels exist and are small, tables are populated,
every sampled pair is delivered within the advertised ``(alpha, beta)``
bound, and headers stay bounded.  Tests and examples call it; it is also
a useful debugging entry point when developing a new scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..graph.metric import MetricView
from ..routing.model import CompactRoutingScheme, words_of
from ..routing.serving import ServingError
from ..routing.shard_codec import ShardCodecError
from ..routing.simulator import RoutingLoopError, route
from .workloads import sample_pairs

__all__ = ["ValidationResult", "validate_scheme"]

#: the failures a scheme under validation is *expected* to be able to
#: produce — the typed serving/codec hierarchy plus the routing-layer
#: loop guard and API-misuse errors.  Anything outside this tuple is a
#: bug in the scheme, and the checklist re-reports it as "unexpected"
#: rather than letting it escape (validate_scheme never raises).
EXPECTED_SCHEME_ERRORS = (
    ServingError,
    ShardCodecError,
    RoutingLoopError,
    ValueError,
    KeyError,
)


@dataclass
class ValidationResult:
    """Outcome of :func:`validate_scheme`."""

    ok: bool
    checked_pairs: int
    max_stretch: float
    max_header_words: int
    max_label_words: int
    problems: List[str] = field(default_factory=list)


def validate_scheme(
    scheme: CompactRoutingScheme,
    metric: MetricView,
    *,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    sample: int = 200,
    seed: int = 0,
    label_word_limit: Optional[int] = None,
) -> ValidationResult:
    """Run the structural checklist; never raises, reports problems.

    Parameters
    ----------
    pairs:
        Pairs to route; defaults to a seeded sample of ``sample`` pairs.
    label_word_limit:
        Upper bound on label words (defaults to ``8 * ceil(log2 n) + 8``,
        generous for every scheme in this repository).
    """
    problems: List[str] = []
    n = scheme.graph.n
    bound = scheme.stretch_bound() if hasattr(scheme, "stretch_bound") else None
    if isinstance(bound, tuple):
        alpha, beta = bound
    elif bound is not None:
        alpha, beta = float(bound), 0.0
    else:
        alpha, beta = float("inf"), 0.0

    if label_word_limit is None:
        import math

        label_word_limit = 8 * math.ceil(math.log2(max(n, 2))) + 8

    max_label = 0
    for v in scheme.graph.vertices():
        try:
            label = scheme.label_of(v)
        except EXPECTED_SCHEME_ERRORS as exc:
            problems.append(f"label_of({v}) raised: {exc!r}")
            continue
        except Exception as exc:  # repro: noqa ERR001 — never-raises contract: re-reported as unexpected, not swallowed
            problems.append(f"label_of({v}) raised unexpected: {exc!r}")
            continue
        lw = words_of(label)
        max_label = max(max_label, lw)
        if lw > label_word_limit:
            problems.append(
                f"label of {v} has {lw} words > limit {label_word_limit}"
            )
        table = scheme.table_of(v)
        if table.owner != v:
            problems.append(f"table of {v} owned by {table.owner}")

    if pairs is None:
        pairs = sample_pairs(n, sample, seed=seed)
    checked = 0
    max_stretch = 0.0
    max_header = 0
    for s, t in pairs:
        try:
            result = route(scheme, s, t)
        except EXPECTED_SCHEME_ERRORS as exc:
            problems.append(f"routing {s}->{t} raised: {exc!r}")
            continue
        except Exception as exc:  # repro: noqa ERR001 — never-raises contract: re-reported as unexpected, not swallowed
            problems.append(f"routing {s}->{t} raised unexpected: {exc!r}")
            continue
        d = metric.d(s, t)
        checked += 1
        max_header = max(max_header, result.max_header_words)
        if d <= 0:
            continue
        max_stretch = max(max_stretch, result.length / d)
        if result.length > alpha * d + beta + 1e-9:
            problems.append(
                f"pair {s}->{t}: length {result.length:.4f} exceeds "
                f"{alpha:.3f}*{d:.4f}+{beta}"
            )
    return ValidationResult(
        ok=not problems,
        checked_pairs=checked,
        max_stretch=max_stretch,
        max_header_words=max_header,
        max_label_words=max_label,
        problems=problems,
    )
