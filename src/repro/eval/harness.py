"""End-to-end evaluation harness: build a scheme, route a workload, report.

This is what the benchmarks call: one function turns a (graph, scheme
factory, workload) triple into an :class:`Evaluation` record holding build
time, stretch statistics, space statistics and bound checks — the columns
of the paper's Table 1.

Comparative runs pass a shared :class:`repro.api.Substrate` handle so the
exact metric, port numbering and ball structures are built once per graph
instead of once per scheme; ``Evaluation`` then separates the shared
substrate-build time from the scheme's own construction time.  The
``factory`` may be a callable or a registered scheme name
(:mod:`repro.api.registry`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple, Union

from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.model import CompactRoutingScheme, SchemeStats
from ..routing.simulator import StretchReport, measure_stretch

__all__ = ["Evaluation", "evaluate_scheme", "evaluate_oracle", "OracleEvaluation"]


@dataclass
class Evaluation:
    """One scheme on one graph on one workload."""

    name: str
    n: int
    m: int
    #: scheme construction time, excluding shared substrate builds
    build_seconds: float
    stretch: StretchReport
    stats: SchemeStats
    #: (alpha, beta) guarantee the scheme advertises
    bound: Tuple[float, float]
    #: time spent materializing the shared metric + ports (0.0 when the
    #: caller handed in a pre-built metric or warm substrate)
    substrate_seconds: float = 0.0

    @property
    def within_bound(self) -> bool:
        alpha, beta = self.bound
        return self.stretch.max_additive_over <= beta + 1e-9

    def row(self) -> str:
        alpha, beta = self.bound
        bound_text = (
            f"{alpha:.2f}" if beta == 0 else f"({alpha:.2f},{beta:.0f})"
        )
        flag = "ok" if self.within_bound else "VIOLATION"
        return (
            f"{self.name:<28} n={self.n:<6} bound={bound_text:<12} "
            f"max={self.stretch.max_stretch:<7.3f} "
            f"avg={self.stretch.avg_stretch:<7.3f} "
            f"tbl-avg={self.stats.avg_table_words:<9.1f} "
            f"tbl-max={self.stats.max_table_words:<8} "
            f"lbl={self.stats.max_label_words:<4} "
            f"hdr={self.stretch.max_header_words:<4} {flag}"
        )


def _normalize_bound(
    bound: Union[float, Tuple[float, float]]
) -> Tuple[float, float]:
    if isinstance(bound, tuple):
        return (float(bound[0]), float(bound[1]))
    return (float(bound), 0.0)


def _accepts_substrate(factory: Callable[..., Any]) -> bool:
    """Whether ``factory`` can take a ``substrate=`` keyword.

    Plain callables (the ``lambda g, metric: scheme`` idiom the benches
    use) must keep working when the caller also passes a substrate for
    timing/metric purposes — substrate injection is an opt-in extension
    of the factory contract, not part of it.
    """
    import inspect

    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return False
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if param.name == "substrate" and param.kind in (
            inspect.Parameter.KEYWORD_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            return True
    return False


def evaluate_scheme(
    graph: Graph,
    factory: Union[str, Callable[..., CompactRoutingScheme]],
    pairs: Iterable[Tuple[int, int]],
    *,
    metric: Optional[MetricView] = None,
    substrate: Optional[Any] = None,
    **factory_kwargs,
) -> Evaluation:
    """Build the scheme, route ``pairs``, report.

    ``factory`` is either a callable (invoked as
    ``factory(graph, metric=..., **kwargs)``) or a registered scheme name
    resolved through :mod:`repro.api.registry`.  A ``substrate`` handle is
    injected into the build and its core (metric + ports) is timed
    separately as ``substrate_seconds`` — on a warm handle that is ~0 and
    ``build_seconds`` is the scheme's own marginal cost.
    """
    if isinstance(factory, str):
        # Resolve and validate the spec BEFORE any substrate build: an
        # incompatible graph must fail fast, not after an O(n^2) APSP.
        from ..api.registry import get_spec

        spec = get_spec(factory)
        spec.check_graph(graph)
        overrides = {
            k: v for k, v in factory_kwargs.items() if k != "seed"
        }
        params = spec.resolve_params(overrides)
        if "seed" in factory_kwargs:
            params["seed"] = factory_kwargs["seed"]
        factory_kwargs = params
        factory = spec.factory
    substrate_seconds = 0.0
    if substrate is not None:
        if metric is None:
            start = time.perf_counter()
            substrate.ensure_core()
            substrate_seconds = time.perf_counter() - start
            metric = substrate.metric
        if _accepts_substrate(factory):
            factory_kwargs["substrate"] = substrate
    elif metric is None:
        start = time.perf_counter()
        metric = MetricView(graph)
        substrate_seconds = time.perf_counter() - start
    start = time.perf_counter()
    scheme = factory(graph, metric=metric, **factory_kwargs)
    build_seconds = time.perf_counter() - start
    bound = _normalize_bound(scheme.stretch_bound())
    report = measure_stretch(
        scheme, metric, pairs, multiplicative_slack=bound[0]
    )
    return Evaluation(
        name=scheme.name,
        n=graph.n,
        m=graph.m,
        build_seconds=build_seconds,
        stretch=report,
        stats=scheme.stats(),
        bound=bound,
        substrate_seconds=substrate_seconds,
    )


@dataclass
class OracleEvaluation:
    """One distance oracle on one graph on one workload."""

    name: str
    n: int
    build_seconds: float
    pairs: int
    max_stretch: float
    avg_stretch: float
    max_additive_over: float
    total_words: int
    max_words_per_vertex: int
    bound: Tuple[float, float]

    @property
    def within_bound(self) -> bool:
        return self.max_additive_over <= self.bound[1] + 1e-9

    def row(self) -> str:
        alpha, beta = self.bound
        bound_text = f"{alpha:.2f}" if beta == 0 else f"({alpha:.2f},{beta:.0f})"
        flag = "ok" if self.within_bound else "VIOLATION"
        return (
            f"{self.name:<28} n={self.n:<6} bound={bound_text:<12} "
            f"max={self.max_stretch:<7.3f} avg={self.avg_stretch:<7.3f} "
            f"space-total={self.total_words:<10} "
            f"space-max={self.max_words_per_vertex:<8} {flag}"
        )


def evaluate_oracle(
    graph: Graph,
    factory: Callable[..., object],
    pairs: Sequence[Tuple[int, int]],
    *,
    metric: Optional[MetricView] = None,
    **factory_kwargs,
) -> OracleEvaluation:
    """Build a distance oracle and compare its answers with the exact metric."""
    metric = metric if metric is not None else MetricView(graph)
    start = time.perf_counter()
    oracle = factory(graph, metric=metric, **factory_kwargs)
    build_seconds = time.perf_counter() - start
    bound = _normalize_bound(oracle.stretch_bound())
    count = 0
    max_stretch = 0.0
    sum_stretch = 0.0
    max_over = float("-inf")
    for u, v in pairs:
        d = metric.d(u, v)
        if d <= 0:
            continue
        est = oracle.query(u, v)
        if est < d - metric.tol:
            raise RuntimeError(
                f"oracle {oracle.name} underestimates d({u},{v}): {est} < {d}"
            )
        count += 1
        stretch = est / d
        sum_stretch += stretch
        max_stretch = max(max_stretch, stretch)
        max_over = max(max_over, est - bound[0] * d)
    space = oracle.space_words()
    return OracleEvaluation(
        name=oracle.name,
        n=graph.n,
        build_seconds=build_seconds,
        pairs=count,
        max_stretch=max_stretch,
        avg_stretch=sum_stretch / count if count else 1.0,
        max_additive_over=max_over if count else 0.0,
        total_words=space["total"],
        max_words_per_vertex=space["max_per_vertex"],
        bound=bound,
    )
