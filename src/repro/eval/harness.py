"""End-to-end evaluation harness: build a scheme, route a workload, report.

This is what the benchmarks call: one function turns a (graph, scheme
factory, workload) triple into an :class:`Evaluation` record holding build
time, stretch statistics, space statistics and bound checks — the columns
of the paper's Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.model import CompactRoutingScheme, SchemeStats
from ..routing.simulator import StretchReport, measure_stretch

__all__ = ["Evaluation", "evaluate_scheme", "evaluate_oracle", "OracleEvaluation"]


@dataclass
class Evaluation:
    """One scheme on one graph on one workload."""

    name: str
    n: int
    m: int
    build_seconds: float
    stretch: StretchReport
    stats: SchemeStats
    #: (alpha, beta) guarantee the scheme advertises
    bound: Tuple[float, float]

    @property
    def within_bound(self) -> bool:
        alpha, beta = self.bound
        return self.stretch.max_additive_over <= beta + 1e-9

    def row(self) -> str:
        alpha, beta = self.bound
        bound_text = (
            f"{alpha:.2f}" if beta == 0 else f"({alpha:.2f},{beta:.0f})"
        )
        flag = "ok" if self.within_bound else "VIOLATION"
        return (
            f"{self.name:<28} n={self.n:<6} bound={bound_text:<12} "
            f"max={self.stretch.max_stretch:<7.3f} "
            f"avg={self.stretch.avg_stretch:<7.3f} "
            f"tbl-avg={self.stats.avg_table_words:<9.1f} "
            f"tbl-max={self.stats.max_table_words:<8} "
            f"lbl={self.stats.max_label_words:<4} "
            f"hdr={self.stretch.max_header_words:<4} {flag}"
        )


def _normalize_bound(
    bound: Union[float, Tuple[float, float]]
) -> Tuple[float, float]:
    if isinstance(bound, tuple):
        return (float(bound[0]), float(bound[1]))
    return (float(bound), 0.0)


def evaluate_scheme(
    graph: Graph,
    factory: Callable[..., CompactRoutingScheme],
    pairs: Iterable[Tuple[int, int]],
    *,
    metric: Optional[MetricView] = None,
    **factory_kwargs,
) -> Evaluation:
    """Build ``factory(graph, metric=..., **kwargs)``, route ``pairs``, report."""
    metric = metric if metric is not None else MetricView(graph)
    start = time.perf_counter()
    scheme = factory(graph, metric=metric, **factory_kwargs)
    build_seconds = time.perf_counter() - start
    bound = _normalize_bound(scheme.stretch_bound())
    report = measure_stretch(
        scheme, metric, pairs, multiplicative_slack=bound[0]
    )
    return Evaluation(
        name=scheme.name,
        n=graph.n,
        m=graph.m,
        build_seconds=build_seconds,
        stretch=report,
        stats=scheme.stats(),
        bound=bound,
    )


@dataclass
class OracleEvaluation:
    """One distance oracle on one graph on one workload."""

    name: str
    n: int
    build_seconds: float
    pairs: int
    max_stretch: float
    avg_stretch: float
    max_additive_over: float
    total_words: int
    max_words_per_vertex: int
    bound: Tuple[float, float]

    @property
    def within_bound(self) -> bool:
        return self.max_additive_over <= self.bound[1] + 1e-9

    def row(self) -> str:
        alpha, beta = self.bound
        bound_text = f"{alpha:.2f}" if beta == 0 else f"({alpha:.2f},{beta:.0f})"
        flag = "ok" if self.within_bound else "VIOLATION"
        return (
            f"{self.name:<28} n={self.n:<6} bound={bound_text:<12} "
            f"max={self.max_stretch:<7.3f} avg={self.avg_stretch:<7.3f} "
            f"space-total={self.total_words:<10} "
            f"space-max={self.max_words_per_vertex:<8} {flag}"
        )


def evaluate_oracle(
    graph: Graph,
    factory: Callable[..., object],
    pairs: Sequence[Tuple[int, int]],
    *,
    metric: Optional[MetricView] = None,
    **factory_kwargs,
) -> OracleEvaluation:
    """Build a distance oracle and compare its answers with the exact metric."""
    metric = metric if metric is not None else MetricView(graph)
    start = time.perf_counter()
    oracle = factory(graph, metric=metric, **factory_kwargs)
    build_seconds = time.perf_counter() - start
    bound = _normalize_bound(oracle.stretch_bound())
    count = 0
    max_stretch = 0.0
    sum_stretch = 0.0
    max_over = float("-inf")
    for u, v in pairs:
        d = metric.d(u, v)
        if d <= 0:
            continue
        est = oracle.query(u, v)
        if est < d - metric.tol:
            raise RuntimeError(
                f"oracle {oracle.name} underestimates d({u},{v}): {est} < {d}"
            )
        count += 1
        stretch = est / d
        sum_stretch += stretch
        max_stretch = max(max_stretch, stretch)
        max_over = max(max_over, est - bound[0] * d)
    space = oracle.space_words()
    return OracleEvaluation(
        name=oracle.name,
        n=graph.n,
        build_seconds=build_seconds,
        pairs=count,
        max_stretch=max_stretch,
        avg_stretch=sum_stretch / count if count else 1.0,
        max_additive_over=max_over if count else 0.0,
        total_words=space["total"],
        max_words_per_vertex=space["max_per_vertex"],
        bound=bound,
    )
