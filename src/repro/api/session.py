"""Routing sessions: a built scheme with a stable serve/persist surface.

A :class:`RoutingSession` wraps one built scheme on one graph and exposes
what a deployment (or a benchmark harness) actually needs:

* ``route(s, t)`` — trace one message through the fixed-port simulator,
* ``measure(pairs)`` — stretch statistics against the exact metric,
* ``stats()`` — per-vertex table/label word accounting,
* ``validate()`` — the structural release checklist,
* ``save(path)`` / :func:`load` — full round-trip persistence.

Persistence layers on :mod:`repro.routing.persistence` (tables + labels,
word-identical) and adds what that module leaves to the caller: the
graph (adjacency lists in *insertion order*, so the deterministic port
numbering survives), the explicit port order, the spec name and the
scheme's step-time scalars (:meth:`SchemeBase.routing_params`).  A loaded
session routes without re-running preprocessing — the scheme class is
reconstructed around the persisted tables via ``SchemeBase.restore`` —
and makes byte-identical step decisions, which the round-trip tests
assert for every registered scheme.

Two persisted shapes exist:

* ``save(path)`` — the legacy single JSON blob (graph + ports + all
  tables); ``load`` parses everything up front,
* ``save(path, shards=True)`` — the deployment shape: one binary shard
  per vertex plus a small manifest (:mod:`repro.routing.serving`);
  ``save(path, shards=True, packed=True)`` packs the same shards into
  ``O(n / group_size)`` mmap-able group files instead of one file per
  vertex (the ``n >= 10^5`` shape).  ``load`` on either directory
  auto-detects the layout from the manifest and returns a session backed
  by a :class:`~repro.routing.serving.LocalRouter` that lazily loads
  only the shards a route visits (``serve_stats()`` reports loads,
  bytes, and the wire-header bytes the routes sent).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..eval.harness import _normalize_bound
from ..eval.validation import ValidationResult, validate_scheme
from ..eval.workloads import sample_pairs
from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.persistence import export_scheme_state, import_scheme_state
from ..routing.ports import PortAssignment
from ..routing.simulator import (
    RouteResult,
    StretchReport,
    measure_stretch,
    route,
)
from ..routing.model import SchemeStats
from .registry import get_spec

__all__ = ["RoutingSession", "load"]

FORMAT = "repro.api.session"
FORMAT_VERSION = 1


class RoutingSession:
    """One built (or loaded) scheme, ready to serve.

    Build through :func:`repro.api.build`; restore through :func:`load`.
    """

    def __init__(
        self,
        scheme: Any,
        *,
        spec_name: str,
        params: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        substrate: Optional[Any] = None,
        metric: Optional[MetricView] = None,
        build_seconds: float = 0.0,
        substrate_seconds: float = 0.0,
        loaded: bool = False,
    ) -> None:
        self.scheme = scheme
        self.spec_name = spec_name
        self.params = dict(params or {})
        self.seed = seed
        self.substrate = substrate
        self._metric = metric
        #: scheme-specific construction time (excludes shared substrates)
        self.build_seconds = build_seconds
        #: time spent materializing the shared metric + ports
        self.substrate_seconds = substrate_seconds
        #: True when restored from disk (no preprocessing ran)
        self.loaded = loaded

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self.scheme.graph

    @property
    def name(self) -> str:
        return self.scheme.name

    @property
    def metric(self) -> MetricView:
        """The exact metric for measurement (built lazily on a loaded
        session — routing itself never needs it)."""
        if self._metric is None:
            if self.substrate is not None:
                self._metric = self.substrate.metric
            elif getattr(self.scheme, "metric", None) is not None:
                self._metric = self.scheme.metric
            else:
                self._metric = MetricView(self.graph, mode="auto")
        return self._metric

    def stretch_bound(self) -> Tuple[float, float]:
        """The scheme's advertised ``(alpha, beta)`` guarantee."""
        return _normalize_bound(self.scheme.stretch_bound())

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def route(self, source: int, target: int,
              max_hops: Optional[int] = None) -> RouteResult:
        """Route one message through the fixed-port simulator.

        An engine that routes *itself* — e.g. a
        :class:`~repro.cluster.router.ClusterRouter`, whose hop loop
        runs worker-side across processes — is delegated to directly;
        it returns the same :class:`RouteResult` shape (the cluster
        parity tests pin it hop-for-hop against the simulator loop).
        """
        own = getattr(self.scheme, "route", None)
        if callable(own):
            return own(source, target, max_hops=max_hops)
        return route(self.scheme, source, target, max_hops=max_hops)

    def measure(
        self,
        pairs: Optional[Iterable[Tuple[int, int]]] = None,
        *,
        count: int = 200,
        seed: Optional[int] = None,
    ) -> StretchReport:
        """Stretch statistics over ``pairs`` (or a seeded sample)."""
        if pairs is None:
            pairs = sample_pairs(
                self.graph.n, count,
                seed=self.seed + 1 if seed is None else seed,
            )
        alpha, _ = self.stretch_bound()
        return measure_stretch(
            self.scheme, self.metric, pairs, multiplicative_slack=alpha
        )

    def stats(self) -> SchemeStats:
        """Table/label space accounting of the built scheme."""
        return self.scheme.stats()

    def validate(self, *, sample: int = 200,
                 seed: Optional[int] = None) -> ValidationResult:
        """Run the structural release checklist."""
        return validate_scheme(
            self.scheme, self.metric, sample=sample,
            seed=self.seed if seed is None else seed,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The JSON-able session payload (see module docstring)."""
        return {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "spec": self.spec_name,
            "params": self.params,
            "seed": self.seed,
            "routing_params": self.scheme.routing_params(),
            "graph": {
                "n": self.graph.n,
                "adjacency": [
                    [[v, w] for v, w in items]
                    for items in self.graph.to_adjacency()
                ],
            },
            "ports": self.scheme.ports.to_order(),
            "state": export_scheme_state(self.scheme),
        }

    def save(
        self,
        path: str,
        *,
        shards: bool = False,
        packed: bool = False,
        checksums: bool = True,
        replicas: int = 1,
    ) -> str:
        """Persist the session; returns ``path``.

        ``shards=False`` writes the single JSON blob.  ``shards=True``
        writes the sharded deployment layout (``path`` becomes a
        directory: one binary shard per vertex + ``manifest.json``), the
        shape where each node can be handed only its own table.
        ``packed=True`` (with ``shards=True``) packs the shards into
        mmap-able group files — same payloads, ``O(n / group_size)``
        files — for serving at ``n >= 10^5``.  Packed shards carry
        CRC32 checksums by default (layout v3; ``checksums=False``
        reverts to plain v2); ``replicas=R >= 2`` writes every group to
        R replica roots, and loading the directory serves through
        checksum-driven failover
        (:class:`~repro.routing.serving.ReplicatedShardStore`).
        """
        if packed and not shards:
            raise ValueError("packed=True requires shards=True")
        if shards:
            from ..routing.serving import write_shards

            write_shards(
                self.scheme,
                path,
                spec_name=self.spec_name,
                params=self.params,
                seed=self.seed,
                packed=packed,
                checksums=checksums,
                replicas=replicas,
            )
            return path
        payload = self.to_payload()
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RoutingSession":
        """Rebuild a session from :meth:`to_payload` output."""
        if payload.get("format") != FORMAT:
            raise ValueError(
                f"not a routing-session payload "
                f"(format={payload.get('format')!r})"
            )
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported session version {payload.get('version')!r}"
            )
        spec = get_spec(payload["spec"])
        state = import_scheme_state(payload["state"])
        factory = spec.factory
        if state["scheme"] != factory.__name__:
            raise ValueError(
                f"payload was built by {state['scheme']}, spec "
                f"{spec.name!r} maps to {factory.__name__}"
            )
        graph = Graph.from_adjacency([
            [(int(v), float(w)) for v, w in items]
            for items in payload["graph"]["adjacency"]
        ])
        if graph.n != int(payload["graph"]["n"]) or graph.n != state["n"]:
            raise ValueError("graph size mismatch in session payload")
        ports = PortAssignment.from_order(graph, payload["ports"])
        scheme = factory.restore(
            graph,
            ports=ports,
            tables=state["tables"],
            labels=state["labels"],
            params=payload.get("routing_params") or {},
            name=state["name"],
        )
        return cls(
            scheme,
            spec_name=payload["spec"],
            params=payload.get("params") or {},
            seed=int(payload.get("seed", 0)),
            loaded=True,
        )

    @classmethod
    def from_shards(
        cls, path: str, *, max_resident: Optional[int] = None
    ) -> "RoutingSession":
        """Open a sharded layout (``save(shards=True)``) for serving.

        The layout (per-file v1 or packed v2) is auto-detected from the
        manifest.  Nothing but the manifest is read up front; each shard
        loads on the first route that visits its vertex.
        ``max_resident`` bounds the decoded-shard LRU (the serving
        node's memory budget).
        """
        from ..routing.serving import LocalRouter, open_store

        store = open_store(path, max_resident=max_resident)
        router = LocalRouter(store)
        return cls(
            router,
            spec_name=router.spec_name,
            params=store.manifest.get("params") or {},
            seed=int(store.manifest.get("seed", 0)),
            loaded=True,
        )

    def serve_stats(self) -> Optional[Dict[str, Any]]:
        """Shard-serving counters (loads, hits, bytes read) or ``None``.

        Includes the engine's wire-header accounting (headers encoded,
        total/max header bytes) when the scheme is a serving engine.
        For a cluster-backed session this is the router's
        ``cluster_stats()`` — per-worker store/header counters summed
        across the live fleet plus RPC, wire-byte and latency
        accounting.  ``None`` means the session is whole-object
        in-memory — there is no lazy loading to account for.
        """
        cluster_stats = getattr(self.scheme, "cluster_stats", None)
        if callable(cluster_stats):
            return cluster_stats()
        store = getattr(self.scheme, "store", None)
        if store is None:
            return None
        stats = store.stats()
        header_stats = getattr(self.scheme, "header_stats", None)
        if header_stats is not None:
            stats.update(header_stats())
        return stats

    def health(self) -> Optional[Dict[str, Any]]:
        """Serving-health summary, or ``None`` for in-memory sessions.

        ``{"status": "ok" | "degraded", ...counters}`` — degraded means
        the store retried, failed over, detected a checksum mismatch or
        currently quarantines a replica; routes still complete (that is
        the point of the fault-tolerance layer), but an operator should
        look at the counters and consider ``repair()``.  Cluster-backed
        sessions report the router's fleet-wide ``health()`` (dead
        workers, quarantined copies, per-worker store health).
        """
        store = getattr(self.scheme, "store", None)
        if store is not None:
            return store.health()
        own = getattr(self.scheme, "health", None)
        if callable(own):
            return own()
        return None

    @classmethod
    def connect(
        cls, spec: Any, **kwargs: Any
    ) -> "RoutingSession":
        """A session over an already-running serving cluster.

        ``spec`` is a reconnect spec dict (:meth:`ClusterHandle.spec`)
        or the path of a ``cluster.json`` the ``repro cluster serve``
        CLI wrote; extra keyword arguments reach the
        :class:`~repro.cluster.router.ClusterRouter` (``timeout_s``...).

        A connected session routes (``route`` / ``serve_stats`` /
        ``health`` / ``describe``) but holds no graph or metric — the
        data lives in the workers' shards — so ``measure`` and
        ``validate`` are unavailable; run those against the
        single-process session over the same shard directory (the
        cluster serves hop-identical routes, which the parity tests
        assert).
        """
        from ..cluster import connect_cluster, load_cluster_spec

        if isinstance(spec, str):
            spec = load_cluster_spec(spec)
        router = connect_cluster(spec, **kwargs)
        return cls(
            router,
            spec_name=router.spec_name or "?",
            params={},
            seed=0,
            loaded=True,
        )

    def describe(self) -> str:
        """One human-readable summary line."""
        placement = getattr(self.scheme, "placement", None)
        if placement is not None:
            return (
                f"{self.name} [{self.spec_name}] — cluster of "
                f"{placement.workers} workers x{placement.replicas} "
                f"replicas serving {self.scheme.n} vertices"
            )
        if self.serve_stats() is not None:
            return (
                f"{self.name} [{self.spec_name}] — serving "
                f"{self.scheme.n} vertices from shards at "
                f"{self.scheme.store.path}"
            )
        origin = "loaded" if self.loaded else (
            f"built in {self.build_seconds:.2f}s "
            f"(+{self.substrate_seconds:.2f}s substrate)"
        )
        return (
            f"{self.name} [{self.spec_name}] on {self.graph!r} — {origin}"
        )


def load(path: str) -> RoutingSession:
    """Load what :meth:`RoutingSession.save` wrote — blob or shard dir.

    A directory with a shard manifest opens lazily
    (:meth:`RoutingSession.from_shards`); anything else parses as the
    JSON session blob.
    """
    from ..routing.serving import is_shard_dir

    if is_shard_dir(path):
        return RoutingSession.from_shards(path)
    if os.path.isdir(path):
        raise ValueError(
            f"{path!r} is a directory without a shard manifest — "
            f"not a saved session"
        )
    with open(path) as fh:
        payload = json.load(fh)
    return RoutingSession.from_payload(payload)


def build_session(
    name: str,
    graph: Graph,
    *,
    seed: int = 0,
    substrate: Optional[Any] = None,
    cache: Optional[Any] = None,
    ports: Optional[PortAssignment] = None,
    metric: Optional[MetricView] = None,
    preset: Optional[str] = None,
    **params: Any,
) -> RoutingSession:
    """Implementation behind :func:`repro.api.build` (see its docstring).

    ``preset`` names a workload-aware parameter preset of the spec (e.g.
    a graph family like ``"grid"``); explicit ``params`` still win.
    """
    from .substrate import Substrate

    spec = get_spec(name)
    spec.check_graph(graph)
    resolved = spec.resolve_params(params, preset=preset)
    if substrate is None:
        if cache is not None:
            if metric is not None or ports is not None:
                raise ValueError(
                    "pass either cache= or explicit metric=/ports= — a "
                    "cache hands out its own substrate artifacts, so the "
                    "explicit ones would be silently ignored"
                )
            substrate = cache.substrate(graph)
        else:
            substrate = Substrate(graph, metric=metric, ports=ports)
    elif metric is not None or ports is not None:
        raise ValueError(
            "pass either substrate= or explicit metric=/ports=, not both"
        )
    t0 = time.perf_counter()
    substrate.ensure_core()
    substrate_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    scheme = spec.factory(
        graph, seed=seed, substrate=substrate, **resolved
    )
    build_seconds = time.perf_counter() - t0
    return RoutingSession(
        scheme,
        spec_name=name,
        params=resolved,
        seed=seed,
        substrate=substrate,
        build_seconds=build_seconds,
        substrate_seconds=substrate_seconds,
    )
