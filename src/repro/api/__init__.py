"""``repro.api`` — the public build/serve surface of the reproduction.

Three layers, one import::

    from repro.api import build, SubstrateCache, load

    cache = SubstrateCache()            # share substrates across schemes
    session = build("thm11", graph, cache=cache, eps=0.6)
    result = session.route(0, 42)       # fixed-port simulator
    report = session.measure(count=500) # stretch vs the exact metric
    session.save("thm11.json")          # tables + labels + graph + ports
    session2 = load("thm11.json")       # routes without preprocessing

* **Registry** (:mod:`repro.api.registry`) — every scheme and baseline as
  a declarative :class:`SchemeSpec` (name, factory, parameter schema with
  defaults and validation, stretch bound, accepted graph classes).
* **Substrates** (:mod:`repro.api.substrate`) — per-graph memoized
  builders for the artifacts every scheme shares (metric, ports, ball
  families and first-edge ports, landmark samples, bunches, hierarchies),
  with generation stamps proving reuse.
* **Sessions** (:mod:`repro.api.session`) — a built scheme wrapped with
  ``route``/``measure``/``stats``/``validate`` and save/load persistence.
"""

from .registry import (
    ParamSpec,
    SchemeParamError,
    SchemeSpec,
    TABLE1_SCHEMES,
    UnknownPresetError,
    UnknownSchemeError,
    all_specs,
    get_spec,
    register,
    scheme_names,
)
from .session import RoutingSession, build_session as build, load
from .substrate import Substrate, SubstrateCache

__all__ = [
    "ParamSpec",
    "SchemeParamError",
    "SchemeSpec",
    "TABLE1_SCHEMES",
    "UnknownPresetError",
    "UnknownSchemeError",
    "all_specs",
    "get_spec",
    "register",
    "scheme_names",
    "RoutingSession",
    "build",
    "load",
    "Substrate",
    "SubstrateCache",
]
