"""Declarative scheme registry: every scheme as a named, validated spec.

Before this module, ``__main__``, the examples, the harness and each
benchmark carried its own ad-hoc ``SCHEMES`` dict (factory, kwargs,
weighted flag).  :class:`SchemeSpec` replaces those: one declarative
record per scheme holding the factory, the parameter schema with
defaults and validation, the advertised stretch bound and the graph
classes the scheme accepts.  The registry is the single source of truth
the CLI, the facade (:func:`repro.api.build`), the harness and the
benchmarks resolve names against.

The built-in names mirror the paper's Table 1 rows (``thm10`` ...
``thm16``), the Section 4 warm-ups, and the Thorup–Zwick baselines
(``tz2``/``tz3``/``tz4``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..baselines.thorup_zwick import ThorupZwickScheme
from ..graph.core import Graph
from ..schemes import (
    GeneralMinusScheme,
    GeneralPlusScheme,
    NameIndependent3Eps,
    Stretch2Plus1Scheme,
    Stretch4kMinus7Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)

__all__ = [
    "ParamSpec",
    "SchemeSpec",
    "UnknownSchemeError",
    "UnknownPresetError",
    "SchemeParamError",
    "register",
    "get_spec",
    "scheme_names",
    "all_specs",
    "TABLE1_SCHEMES",
]


class UnknownSchemeError(KeyError):
    """Raised for a name with no registered spec; lists what exists."""

    def __init__(self, name: str, known: List[str]) -> None:
        self.name = name
        self.known = known
        lines = "\n".join(f"  {n}" for n in known)
        super().__init__(
            f"unknown scheme {name!r}; registered schemes:\n{lines}"
        )

    def __str__(self) -> str:  # KeyError quotes its message otherwise
        return self.args[0]


class SchemeParamError(ValueError):
    """Raised when parameters do not fit a spec's schema."""


class UnknownPresetError(SchemeParamError):
    """Raised for a preset name the spec does not define; lists them."""

    def __init__(self, scheme: str, preset: str, known: List[str]) -> None:
        self.scheme = scheme
        self.preset = preset
        self.known = known
        if known:
            hint = "known presets: " + ", ".join(known)
        else:
            hint = "this scheme defines no presets"
        super().__init__(
            f"unknown preset {preset!r} for scheme {scheme!r}; {hint}"
        )


@dataclass(frozen=True)
class ParamSpec:
    """One constructor parameter of a scheme."""

    name: str
    default: Any
    kind: type = float
    #: inclusive lower bound (None = unbounded); schemes enforce the
    #: strict/semantic checks themselves, this catches CLI typos early
    minimum: Optional[float] = None
    doc: str = ""

    def coerce(self, value: Any) -> Any:
        try:
            coerced = self.kind(value)
        except (TypeError, ValueError) as exc:
            raise SchemeParamError(
                f"parameter {self.name}={value!r} is not a valid "
                f"{self.kind.__name__}"
            ) from exc
        if self.minimum is not None and coerced < self.minimum:
            raise SchemeParamError(
                f"parameter {self.name}={coerced} below minimum "
                f"{self.minimum}"
            )
        return coerced


@dataclass(frozen=True)
class SchemeSpec:
    """A scheme as a declarative, buildable record."""

    name: str
    factory: Callable[..., Any]
    summary: str
    #: advertised (alpha, beta) stretch at the default parameters,
    #: e.g. "(2+eps, 1)" — display only; the built scheme reports the
    #: exact bound via ``stretch_bound()``
    stretch: str
    params: Tuple[ParamSpec, ...] = field(default_factory=tuple)
    #: handles positively-weighted graphs (False = unweighted only)
    weighted_capable: bool = True
    #: Table-1 convention: build on the weighted variant of a topology
    prefers_weighted: bool = False
    #: workload-aware parameter overrides by preset name (graph family):
    #: resolved between the defaults and the caller's explicit overrides
    presets: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def param(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise SchemeParamError(
            f"scheme {self.name!r} has no parameter {name!r}; "
            f"expected one of {[p.name for p in self.params]}"
        )

    def defaults(self) -> Dict[str, Any]:
        return {p.name: p.default for p in self.params}

    def preset_names(self) -> List[str]:
        """Preset names this spec defines, sorted."""
        return sorted(self.presets)

    def preset_params(self, preset: str) -> Dict[str, Any]:
        """The overrides of one preset; unknown names raise with the list."""
        try:
            return dict(self.presets[preset])
        except KeyError:
            raise UnknownPresetError(
                self.name, preset, self.preset_names()
            ) from None

    def resolve_params(
        self,
        overrides: Dict[str, Any],
        *,
        preset: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Defaults, then preset overrides, then validated explicit ones.

        Precedence (lowest to highest): parameter defaults < the named
        preset's workload-aware overrides < the caller's explicit
        ``overrides``.  Unknown parameter or preset names raise.
        """
        resolved = self.defaults()
        if preset is not None:
            for name, value in self.preset_params(preset).items():
                resolved[name] = self.param(name).coerce(value)
        for name, value in overrides.items():
            resolved[name] = self.param(name).coerce(value)
        return resolved

    def check_graph(self, graph: Graph) -> None:
        """Reject graph classes the scheme is not stated for."""
        if not self.weighted_capable and not graph.is_unweighted():
            raise SchemeParamError(
                f"scheme {self.name!r} is stated for unweighted graphs; "
                f"got a weighted {graph!r}"
            )


_REGISTRY: Dict[str, SchemeSpec] = {}


def register(spec: SchemeSpec, *, replace: bool = False) -> SchemeSpec:
    """Add a spec to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"scheme {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> SchemeSpec:
    """Look up a spec by name; unknown names raise with the full list."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSchemeError(name, scheme_names()) from None


def scheme_names() -> List[str]:
    """Registered names, sorted."""
    return sorted(_REGISTRY)


def all_specs() -> List[SchemeSpec]:
    """All registered specs in name order."""
    return [_REGISTRY[name] for name in scheme_names()]


#: the five rows of the paper's Table 1 the comparative flows build
TABLE1_SCHEMES = ["thm10", "tz2", "tz3", "thm11", "thm16"]


def _eps(default: float) -> ParamSpec:
    return ParamSpec("eps", default, float, 1e-9, "target stretch slack")


def _alpha() -> ParamSpec:
    return ParamSpec(
        "alpha", 1.0, float, 1e-9,
        "ball-size constant in q̃ = alpha·q·log n",
    )


def _family_presets(base_alpha: float) -> Dict[str, Dict[str, Any]]:
    """Workload-aware ``alpha`` overrides per graph family.

    The ball-size constant is the knob the topology actually moves
    (``q̃ = alpha·q·log n``; the ``q`` exponent itself is fixed by each
    theorem).  Registered from the recorded frontier calibration
    (``BENCH_kernel.json:preset_frontier`` — thm11, n=300, 150 pairs,
    stretch-targeted sweep over alpha in [0.2, 1.5]):

    * ``er`` — the calibration baseline; the registered default stands
      (calibrated 1.0x),
    * ``grid`` — large diameter, degree <= 4: balls meet few vertices
      per radius step, so Lemma 6 colorings need fatter balls (1.5x,
      confirmed by calibration),
    * ``ba`` — preferential-attachment hubs crowd small balls with the
      same high-degree vertices; the hand-tuned 0.75x starved the Lemma
      6 coloring of distinct colors, and the frontier's stretch knee
      sits at 1.25x (max stretch 2.53 -> 2.16 for ~20% more table
      words),
    * ``geo`` — locally dense, so balls fill cheaply: calibration walks
      the hand-tuned 1.25x back to 0.75x with max stretch flat at 2.28
      and ~20% fewer table words.
    """
    return {
        "er": {},
        "grid": {"alpha": round(base_alpha * 1.5, 6)},
        "ba": {"alpha": round(base_alpha * 1.25, 6)},
        "geo": {"alpha": round(base_alpha * 0.75, 6)},
    }


register(SchemeSpec(
    name="thm10",
    factory=Stretch2Plus1Scheme,
    summary="Theorem 10: (2+eps,1) labeled routing, Õ(n^2/3 /eps) tables",
    stretch="(2+eps, 1)",
    params=(_eps(0.5), _alpha()),
    weighted_capable=False,
    presets=_family_presets(1.0),
))
register(SchemeSpec(
    name="thm11",
    factory=Stretch5PlusScheme,
    summary="Theorem 11: (5+eps) labeled routing, Õ(n^1/3 logD /eps) tables",
    stretch="(5+eps, 0)",
    params=(_eps(0.6), _alpha()),
    prefers_weighted=True,
    presets=_family_presets(1.0),
))
register(SchemeSpec(
    name="thm13",
    factory=GeneralMinusScheme,
    summary="Theorem 13: (3-2/l+eps,2) routing, Õ(l n^{l/(2l-1)} /eps)",
    stretch="(3-2/l+eps, 2)",
    params=(
        ParamSpec("ell", 3, int, 2, "the paper's l >= 2"),
        _eps(1.0),
        ParamSpec("alpha", 0.5, float, 1e-9,
                  "ball-size constant in q̃ = alpha·q·log n"),
    ),
    weighted_capable=False,
    presets=_family_presets(0.5),
))
register(SchemeSpec(
    name="thm15",
    factory=GeneralPlusScheme,
    summary="Theorem 15: (3+2/l+eps,2) routing, Õ(l n^{l/(2l+1)} /eps)",
    stretch="(3+2/l+eps, 2)",
    params=(
        ParamSpec("ell", 2, int, 2, "the paper's l >= 2"),
        _eps(1.0),
        ParamSpec("alpha", 0.5, float, 1e-9,
                  "ball-size constant in q̃ = alpha·q·log n"),
    ),
    weighted_capable=False,
    presets=_family_presets(0.5),
))
register(SchemeSpec(
    name="thm16",
    factory=Stretch4kMinus7Scheme,
    summary="Theorem 16: (4k-7+eps) routing, Õ(n^1/k logD /eps) tables",
    stretch="(4k-7+eps, 0)",
    params=(
        ParamSpec("k", 4, int, 3, "hierarchy depth k >= 3"),
        _eps(1.0),
        _alpha(),
    ),
    prefers_weighted=True,
    presets=_family_presets(1.0),
))
register(SchemeSpec(
    name="warmup3",
    factory=Warmup3Scheme,
    summary="Section 4 warm-up: (3+eps) routing, Õ(sqrt(n)/eps) tables",
    stretch="(3+eps, 0)",
    params=(_eps(0.5), _alpha()),
    prefers_weighted=True,
    presets=_family_presets(1.0),
))
register(SchemeSpec(
    name="name-indep",
    factory=NameIndependent3Eps,
    summary="Name-independent (3+eps) routing (hash coloring, Sec. 4)",
    stretch="(3+eps, 0)",
    params=(_eps(0.5), _alpha()),
    prefers_weighted=True,
    presets=_family_presets(1.0),
))
for _k, _stretch in ((2, 3), (3, 7), (4, 11)):
    register(SchemeSpec(
        name=f"tz{_k}",
        factory=ThorupZwickScheme,
        summary=(
            f"Thorup–Zwick baseline, k={_k}: stretch {_stretch}, "
            f"Õ(n^{{1/{_k}}}) tables"
        ),
        stretch=f"({_stretch}, 0)",
        params=(ParamSpec("k", _k, int, 2, "hierarchy depth"),),
        prefers_weighted=True,
    ))
