"""Shared preprocessing substrates for multi-scheme builds.

The paper's experiments are comparative: Table 1 builds five schemes over
the *same* graph.  Every scheme starts from the same substrates — the
exact metric, the fixed-port numbering, vicinity balls ``B(u, q̃)`` with
their Lemma 2 first-edge ports, Lemma 4 landmark samples, bunch/cluster
structures and TZ hierarchies — and, before this module, each scheme
rebuilt all of them from scratch.

:class:`Substrate` is a per-graph handle with memoized builders for each
artifact; :class:`SubstrateCache` hands out one handle per graph.
:class:`repro.schemes.base.SchemeBase` accepts a handle via its
``substrate=`` keyword and routes every substrate request through it, so
``N`` schemes on one graph pay for each distinct artifact once.

Sharing is sound because every artifact is a deterministic pure function
of ``(graph, parameters, seed)`` — a cache hit returns exactly the object
a cold build would have produced (the substrate tests assert this), and
all artifacts are treated as immutable after construction.

Generation stamps
-----------------
Each handle carries a process-unique ``generation``; the metric and port
assignment it builds are stamped with it (``substrate_stamp``).  Tests
and benchmarks use the stamps to *prove* that a comparative run reused
one substrate instead of silently rebuilding per scheme.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.ball_routing import BallRoutingTables
from ..routing.ports import PortAssignment
from ..routing.tree_routing import TreeRouting
from ..structures.balls import BallFamily

__all__ = ["Substrate", "SubstrateCache"]

#: process-wide generation counter for substrate stamps
_GENERATIONS = itertools.count(1)


class Substrate:
    """Memoized substrate builders for one graph.

    Parameters
    ----------
    graph:
        The graph every built artifact belongs to.
    metric, ports:
        Optional pre-built artifacts to adopt (e.g. a caller-configured
        lazy metric or a shuffled adversarial port numbering); built on
        first use otherwise.
    ports_seed:
        Seed for the port numbering when ``ports`` is not given
        (``None`` = deterministic adjacency order).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        metric: Optional[MetricView] = None,
        ports: Optional[PortAssignment] = None,
        ports_seed: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.generation = next(_GENERATIONS)
        self._ports_seed = ports_seed
        self._metric = metric
        self._ports = ports
        if metric is not None:
            self._stamp(metric)
        if ports is not None:
            self._stamp(ports)
        self._families: Dict[int, BallFamily] = {}
        self._ball_tables: Dict[int, BallRoutingTables] = {}
        self._colorings: Dict[Tuple[str, int, int, int], object] = {}
        self._hitting: Dict[int, List[int]] = {}
        self._landmarks: Dict[Tuple[float, int], List[int]] = {}
        self._bunches: Dict[Tuple[int, ...], object] = {}
        self._hierarchies: Dict[Tuple[int, int], object] = {}
        self._trees: Dict[
            Tuple[int, Optional[Tuple[int, ...]]], TreeRouting
        ] = {}
        #: per-artifact build seconds and hit counts, for the harness
        self.build_seconds: Dict[str, float] = {}
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _stamp(self, artifact: object) -> None:
        # An adopted artifact may carry another handle's stamp already —
        # overwriting it would forge provenance (the stamps exist to
        # prove *which* substrate built an artifact), so first stamp wins.
        if getattr(artifact, "substrate_stamp", None) is None:
            artifact.substrate_stamp = self.generation  # type: ignore[attr-defined]

    def _account(self, kind: str, hit: bool, seconds: float = 0.0) -> None:
        bucket = self.hits if hit else self.misses
        bucket[kind] = bucket.get(kind, 0) + 1
        if not hit:
            self.build_seconds[kind] = (
                self.build_seconds.get(kind, 0.0) + seconds
            )

    # ------------------------------------------------------------------
    @property
    def built_metric(self) -> Optional[MetricView]:
        """The metric if already built (no build, no accounting)."""
        return self._metric

    @property
    def built_ports(self) -> Optional[PortAssignment]:
        """The port assignment if already built (no build, no accounting)."""
        return self._ports

    def _get_metric(self) -> MetricView:
        """Internal access: builds if missing, never counts as a hit.

        The hit counters measure *cross-scheme* reuse; a builder on this
        handle touching its own metric is not reuse and must not inflate
        the persisted stats.
        """
        if self._metric is None:
            t0 = time.perf_counter()
            self._metric = MetricView(self.graph, mode="auto")
            self._account("metric", False, time.perf_counter() - t0)
            self._stamp(self._metric)
        return self._metric

    def _get_ports(self) -> PortAssignment:
        """Internal access counterpart of :meth:`_get_metric`."""
        if self._ports is None:
            t0 = time.perf_counter()
            self._ports = PortAssignment(self.graph, seed=self._ports_seed)
            self._account("ports", False, time.perf_counter() - t0)
            self._stamp(self._ports)
        return self._ports

    @property
    def metric(self) -> MetricView:
        """The shared exact-distance oracle (built on first use)."""
        hit = self._metric is not None
        metric = self._get_metric()
        if hit:
            self._account("metric", True)
        return metric

    @property
    def ports(self) -> PortAssignment:
        """The shared fixed-port numbering (built on first use)."""
        hit = self._ports is not None
        ports = self._get_ports()
        if hit:
            self._account("ports", True)
        return ports

    def ensure_core(self) -> "Substrate":
        """Force the metric and ports to exist (the facade times this).

        Accounts exactly like a property access — a warm handle records
        a hit per artifact — so with :class:`SchemeBase` adopting the
        built artifacts stamp-only, the persisted hit counts equal the
        number of *subsequent* facade builds that reused the substrate.
        """
        for kind, built in (("metric", self._metric), ("ports", self._ports)):
            if built is not None:
                self._account(kind, True)
        self._get_metric()
        self._get_ports()
        return self

    # ------------------------------------------------------------------
    def ball_family(self, ell: int) -> BallFamily:
        """``B(u, ell)`` for every vertex, one build per distinct ``ell``."""
        ell = max(1, min(int(ell), self.graph.n))
        family = self._families.get(ell)
        if family is None:
            metric = self._get_metric()
            t0 = time.perf_counter()
            family = BallFamily(metric, ell)
            self._families[ell] = family
            self._account("balls", False, time.perf_counter() - t0)
        else:
            self._account("balls", True)
        return family

    def owns_family(self, family: BallFamily) -> bool:
        """Whether ``family`` came out of this handle (memoization is only
        valid against the handle's own artifacts)."""
        return self._families.get(family.ell) is family

    def ball_tables(self, ell: int) -> BallRoutingTables:
        """Lemma 2 first-edge ports for the ``ell``-ball family."""
        ell = max(1, min(int(ell), self.graph.n))
        tables = self._ball_tables.get(ell)
        if tables is None:
            # Resolve dependencies outside the timed region so a nested
            # family build is not double-counted into "ball_ports".
            metric = self._get_metric()
            family = self.ball_family(ell)
            ports = self._get_ports()
            t0 = time.perf_counter()
            tables = BallRoutingTables(metric, family, ports)
            self._ball_tables[ell] = tables
            self._account("ball_ports", False, time.perf_counter() - t0)
        else:
            self._account("ball_ports", True)
        return tables

    def coloring(self, ell: int, q: int, seed: int) -> List[int]:
        """Lemma 6 coloring of the ``ell``-ball family with ``q`` colors.

        Memoized on ``(ell, q, seed)`` — the coloring is a deterministic
        function of the balls and the seed, and PR 4 profiling showed the
        repair/verify loop (not cluster trees) dominates thm10's marginal
        build, so a multi-scheme run or an eps-resweep pays for it once.
        """
        ell = max(1, min(int(ell), self.graph.n))
        key = ("lemma6", ell, int(q), int(seed))
        colors = self._colorings.get(key)
        if colors is None:
            from ..structures.coloring import find_coloring

            family = self.ball_family(ell)
            t0 = time.perf_counter()
            colors = find_coloring(
                family.balls(), self.graph.n, q, seed=seed
            )
            self._colorings[key] = colors
            self._account("coloring", False, time.perf_counter() - t0)
        else:
            self._account("coloring", True)
        return list(colors)

    def hash_coloring(
        self, ell: int, q: int, seed: int
    ) -> Tuple[int, List[int]]:
        """Name-independent Lemma 6 hash coloring (memoized like
        :meth:`coloring`); returns ``(hash_seed, colors)``."""
        ell = max(1, min(int(ell), self.graph.n))
        key = ("hash", ell, int(q), int(seed))
        entry = self._colorings.get(key)
        if entry is None:
            from ..structures.coloring import find_hash_coloring

            family = self.ball_family(ell)
            t0 = time.perf_counter()
            entry = find_hash_coloring(
                family.balls(), self.graph.n, q, seed=seed
            )
            self._colorings[key] = entry
            self._account("coloring", False, time.perf_counter() - t0)
        else:
            self._account("coloring", True)
        hash_seed, colors = entry
        return hash_seed, list(colors)

    def hitting_set(self, ell: int) -> List[int]:
        """Greedy Lemma 5 hitting set of the ``ell``-ball family.

        The eps-*independent* half of Technique 1's state: the hitting
        set (and the global trees rooted at it, shared through
        :meth:`tree_routing`) depend only on the balls, so an eps-sweep
        of a Technique 1 scheme rebuilds neither.
        """
        ell = max(1, min(int(ell), self.graph.n))
        hitting = self._hitting.get(ell)
        if hitting is None:
            from ..structures.hitting_set import greedy_hitting_set

            family = self.ball_family(ell)
            t0 = time.perf_counter()
            hitting = greedy_hitting_set(family.balls())
            self._hitting[ell] = hitting
            self._account("hitting", False, time.perf_counter() - t0)
        else:
            self._account("hitting", True)
        return list(hitting)

    def landmark_sample(self, s: float, seed: int) -> List[int]:
        """Lemma 4 cluster-bounded sample (memoized on ``(s, seed)``)."""
        key = (round(float(s), 9), int(seed))
        sample = self._landmarks.get(key)
        if sample is None:
            from ..structures.sampling import sample_cluster_bounded

            t0 = time.perf_counter()
            sample = sample_cluster_bounded(self._get_metric(), s, seed=seed)
            self._landmarks[key] = sample
            self._account("landmarks", False, time.perf_counter() - t0)
        else:
            self._account("landmarks", True)
        return list(sample)

    def bunch_structure(self, landmarks: Sequence[int]):
        """Pivots/bunches/clusters for one landmark set (memoized)."""
        key = tuple(sorted(set(int(v) for v in landmarks)))
        bunches = self._bunches.get(key)
        if bunches is None:
            from ..structures.bunches import BunchStructure

            t0 = time.perf_counter()
            bunches = BunchStructure(self._get_metric(), key)
            self._bunches[key] = bunches
            self._account("bunches", False, time.perf_counter() - t0)
        else:
            self._account("bunches", True)
        return bunches

    def tree_routing(
        self,
        root: int,
        members: Optional[Iterable[int]],
        build_tree: Callable[[], object],
    ) -> TreeRouting:
        """Heavy-path tree routing for one (cluster or landmark) tree.

        Memoized on ``(root, member set)``; ``members=None`` keys the
        full-graph SPT at ``root``.  Every caller's tree is the
        deterministic shortest-path tree of that key (restricted to the
        member set, computed against this handle's metric with its fixed
        tie-breaking), so the heavy-path intervals, records and labels
        are identical no matter which scheme asks first — cluster trees
        are the dominant per-scheme rebuild the ROADMAP follow-up (a)
        calls out (thm10's marginal build is mostly this).
        """
        key = (
            int(root),
            None if members is None else tuple(sorted(members)),
        )
        tree = self._trees.get(key)
        if tree is None:
            ports = self._get_ports()
            t0 = time.perf_counter()
            tree = TreeRouting(build_tree(), ports)
            self._trees[key] = tree
            self._account("trees", False, time.perf_counter() - t0)
        else:
            self._account("trees", True)
        return tree

    def has_tree(
        self, root: int, members: Optional[Iterable[int]] = None
    ) -> bool:
        """Whether :meth:`tree_routing` already holds ``(root, members)``.

        Lets batched SPT prefetching (see
        :meth:`repro.graph.metric.MetricView.prefetch_spt_parents`) skip
        roots whose heavy-path routing is memoized here — their parent
        maps will never be recomputed, so staging rows for them is waste.
        """
        key = (
            int(root),
            None if members is None else tuple(sorted(members)),
        )
        return key in self._trees

    def hierarchy(self, k: int, seed: int):
        """TZ ``k``-level sampled hierarchy (memoized on ``(k, seed)``)."""
        key = (int(k), int(seed))
        hierarchy = self._hierarchies.get(key)
        if hierarchy is None:
            from ..baselines.hierarchy import SampledHierarchy

            t0 = time.perf_counter()
            hierarchy = SampledHierarchy(self._get_metric(), k, seed=seed)
            self._hierarchies[key] = hierarchy
            self._account("hierarchy", False, time.perf_counter() - t0)
        else:
            self._account("hierarchy", True)
        return hierarchy

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-artifact hit/miss counts and cold-build seconds."""
        kinds = (
            set(self.hits) | set(self.misses) | set(self.build_seconds)
        )
        return {
            kind: {
                "hits": self.hits.get(kind, 0),
                "misses": self.misses.get(kind, 0),
                "build_seconds": round(self.build_seconds.get(kind, 0.0), 6),
            }
            for kind in sorted(kinds)
        }

    def __repr__(self) -> str:
        built = []
        if self._metric is not None:
            built.append("metric")
        if self._ports is not None:
            built.append("ports")
        if self._families:
            built.append(f"balls×{len(self._families)}")
        return (
            f"Substrate(gen={self.generation}, {self.graph!r}, "
            f"built=[{', '.join(built)}])"
        )


class SubstrateCache:
    """One :class:`Substrate` handle per graph.

    Keyed on graph *identity and version*: mutating a graph (adding an
    edge) retires its old handle, so stale substrates can never leak into
    a build.  The cache holds strong references — scope it to a
    comparative run, not to a process.
    """

    def __init__(self, *, ports_seed: Optional[int] = None) -> None:
        self._ports_seed = ports_seed
        self._entries: Dict[int, Tuple[int, Graph, Substrate]] = {}

    def substrate(self, graph: Graph) -> Substrate:
        """The handle for ``graph`` (created on first request)."""
        version = getattr(graph, "_version", 0)
        entry = self._entries.get(id(graph))
        # The stored graph reference also keeps the id stable.
        if entry is not None and entry[0] == version and entry[1] is graph:
            return entry[2]
        handle = Substrate(graph, ports_seed=self._ports_seed)
        self._entries[id(graph)] = (version, graph, handle)
        return handle

    def __len__(self) -> int:
        return len(self._entries)
