"""Replica-aware placement of pack groups onto cluster workers.

The packed layouts already partition the vertex set into groups
(``g = v // group_size``); placement maps those groups onto ``W`` worker
processes:

* ``primary(g) = g * W // G`` — contiguous group ranges, so a worker's
  working set is a contiguous byte range of the packed store (the same
  locality argument as the layout itself), and
* ``owners(g) = (primary, primary + 1, ..., primary + R - 1) mod W`` —
  a group's R replica copies land on R *distinct* workers (enforced by
  ``W >= R``), so killing any single worker leaves every group with a
  live owner.  Replica copy ``k`` of group ``g`` is served by
  ``owners(g)[k]`` from ``replica/<k>/groups/<g>.pack`` — the exact
  files ``write_shards(replicas=R)`` already lays down, read in place,
  no re-partitioning step.

Placement is pure arithmetic on ``(n, group_size, workers, replicas)``:
the client and every worker derive the same ownership map independently
from the manifest, so no membership service crosses the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Placement"]

#: manifest layout versions a cluster can serve (packed groups only —
#: the v1 per-file layout has no group partition to place)
_PACKED_VERSIONS = (2, 3)


@dataclass(frozen=True)
class Placement:
    """Deterministic ``group -> workers`` ownership map.

    ``replicas`` is the layout's copy count: 1 for single-copy packed
    layouts (no failover possible — a worker kill loses its groups),
    R >= 2 for replicated v3 layouts.
    """

    n: int
    group_size: int
    workers: int
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"placement needs n >= 1, got {self.n}")
        if self.group_size < 1:
            raise ValueError(
                f"placement needs group_size >= 1, got {self.group_size}"
            )
        if self.workers < 1:
            raise ValueError(
                f"placement needs workers >= 1, got {self.workers}"
            )
        if self.replicas < 1:
            raise ValueError(
                f"placement needs replicas >= 1, got {self.replicas}"
            )
        if self.workers < self.replicas:
            raise ValueError(
                f"{self.workers} workers cannot place {self.replicas} "
                f"replicas on distinct workers — a single worker kill "
                f"must never take out every copy of a group; start at "
                f"least {self.replicas} workers"
            )

    @classmethod
    def from_manifest(
        cls, manifest: Dict[str, Any], *, workers: int
    ) -> "Placement":
        """Placement for a packed-layout manifest (v2/v3)."""
        version = manifest.get("version")
        if version not in _PACKED_VERSIONS or (
            manifest.get("layout") != "packed"
        ):
            raise ValueError(
                f"cluster serving needs a packed layout (versions "
                f"{_PACKED_VERSIONS}, layout 'packed'); got "
                f"version={version!r} layout={manifest.get('layout')!r} "
                f"— re-shard with write_shards(packed=True)"
            )
        return cls(
            n=int(manifest["n"]),
            group_size=int(manifest["group_size"]),
            workers=workers,
            replicas=int(manifest.get("replicas", 1)),
        )

    # -- group arithmetic ---------------------------------------------
    @property
    def groups(self) -> int:
        return (self.n + self.group_size - 1) // self.group_size

    def group_of(self, v: int) -> int:
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside 0..{self.n - 1}")
        return v // self.group_size

    # -- ownership -----------------------------------------------------
    def primary(self, g: int) -> int:
        """Preferred owner of group ``g`` (serves replica copy 0)."""
        if not 0 <= g < self.groups:
            raise ValueError(
                f"group {g} outside 0..{self.groups - 1}"
            )
        return g * self.workers // self.groups

    def owners(self, g: int) -> Tuple[int, ...]:
        """Workers holding group ``g``, in failover order; index ``k``
        serves replica copy ``k``."""
        first = self.primary(g)
        return tuple(
            (first + k) % self.workers for k in range(self.replicas)
        )

    def owner_of(self, v: int) -> int:
        return self.primary(self.group_of(v))

    def assignment(self, w: int) -> Dict[int, int]:
        """``{group: replica copy index}`` served by worker ``w``.

        The worker's startup contract: for each entry ``(g, k)`` it maps
        ``replica/<k>/groups/<g>.pack`` (or the unreplicated
        ``groups/<g>.pack`` when ``replicas == 1``) and serves lookups
        for exactly those groups.
        """
        if not 0 <= w < self.workers:
            raise ValueError(
                f"worker {w} outside 0..{self.workers - 1}"
            )
        owned: Dict[int, int] = {}
        for g in range(self.groups):
            for k, owner in enumerate(self.owners(g)):
                if owner == w:
                    owned[g] = k
                    break
        return owned

    def spec(self) -> Dict[str, int]:
        """JSON-able identity (the ``cluster.json`` placement fields)."""
        return {
            "n": self.n,
            "group_size": self.group_size,
            "workers": self.workers,
            "replicas": self.replicas,
        }
