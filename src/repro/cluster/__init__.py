"""Multi-node serving cluster for packed routing shards.

``repro.cluster`` promotes the single-process serving stack
(:mod:`repro.routing.serving`) to a fleet of worker processes:

* :mod:`~repro.cluster.placement` — deterministic, replica-aware map of
  pack groups onto workers (pure arithmetic on the manifest; client and
  workers derive it independently).
* :mod:`~repro.cluster.wire` — versioned length-prefixed binary RPC;
  every wire-crossing failure is a typed
  :class:`~repro.routing.serving.ServingError` /
  :class:`~repro.routing.shard_codec.ShardCodecError` subclass,
  re-raised typed client-side.
* :mod:`~repro.cluster.worker` — one process per worker: a restricted
  :class:`~repro.routing.serving.PackedShardStore` over its assigned
  groups behind a threading TCP server.
* :mod:`~repro.cluster.router` — the client: drives routes hop by hop
  across workers with per-packet replica failover, producing
  :class:`~repro.routing.simulator.RouteResult` objects bit-identical
  to the single-process loop.
* :mod:`~repro.cluster.driver` — lifecycle: start/stop/kill workers,
  reconnect specs (``repro cluster`` CLI).
"""

from .driver import (
    ClusterHandle,
    connect_cluster,
    load_cluster_spec,
    save_cluster_spec,
    start_cluster,
)
from .placement import Placement
from .router import ClusterRouter
from .wire import (
    ClusterError,
    NotOwnerError,
    WireProtocolError,
    WorkerUnavailableError,
)
from .worker import WorkerServer, build_worker_store, run_worker

__all__ = [
    "ClusterHandle",
    "ClusterRouter",
    "ClusterError",
    "NotOwnerError",
    "Placement",
    "WireProtocolError",
    "WorkerUnavailableError",
    "WorkerServer",
    "build_worker_store",
    "connect_cluster",
    "load_cluster_spec",
    "run_worker",
    "save_cluster_spec",
    "start_cluster",
]
