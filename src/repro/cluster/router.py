"""The cluster client: drives routes hop by hop across worker processes.

:class:`ClusterRouter` is the wire-side twin of the single-process
routing loop in :func:`repro.routing.simulator.route`.  It holds one
persistent connection per worker, forwards each packet to the owner of
its current vertex's group (``MSG_FORWARD`` segments, batched per
worker to amortise round trips), and replays every returned hop tuple —
``(next vertex, weight, header words, phase)`` — through exactly the
simulator's accumulation order, so the :class:`RouteResult` it returns
is bit-identical to the one the single-process loop produces: same
path, same float ``length`` (weights summed hop by hop, never
re-associated), same ``max_header_words`` / ``phase_hops``, same
``RoutingLoopError`` / ``MisdeliveryError`` on the same step.

Failover is client-side, mirroring
:class:`~repro.routing.serving.ReplicatedShardStore` one layer up: a
connection loss (:class:`WorkerUnavailableError`) marks the worker dead
and every affected packet re-targets the next owner in the group's
placement order; a typed integrity/unavailability error from a worker
quarantines that ``(group, worker)`` copy only.  Either way the
``failovers`` counter ticks once per re-targeted packet — the same
unit the replicated store counts per group — and a group whose owners
are all dead or quarantined raises
:class:`~repro.routing.serving.ReplicaExhaustedError` with per-worker
causes, exactly like a group whose replica files are all bad.

``cluster_stats()`` aggregates the serving picture end to end: summed
per-worker store counters and header bytes (fetched over
``MSG_STATUS``), client RPC counters, true wire cost (8-byte frame
headers and payload bytes, both directions) and request latency
percentiles (``perf_counter`` durations — instrumentation, never
algorithmic input).
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..routing.serving import (
    ReplicaExhaustedError,
    ShardIntegrityError,
    ShardUnavailableError,
)
from ..routing.shard_codec import decode_value, encode_value
from ..routing.simulator import (
    MisdeliveryError,
    RouteResult,
    RoutingLoopError,
)
from .placement import Placement
from .wire import (
    FRAME_BYTES,
    MSG_FORWARD,
    MSG_LABEL,
    MSG_SHUTDOWN,
    MSG_STATUS,
    REPLY_ERROR,
    REPLY_OK,
    WireProtocolError,
    WorkerUnavailableError,
    decode_error,
    msg_name,
    raise_remote,
    recv_frame,
    send_frame,
)

__all__ = ["ClusterRouter", "DEFAULT_BATCH_SIZE"]

#: packets per FORWARD frame: large enough to amortise the round trip,
#: small enough that one worker failure re-routes a bounded batch
DEFAULT_BATCH_SIZE = 32

#: remote typed errors that justify trying another replica owner —
#: the same set that drives ReplicatedShardStore's on-disk failover
_FAILOVER_ERRORS = (
    WorkerUnavailableError,
    ShardUnavailableError,
    ShardIntegrityError,
    ReplicaExhaustedError,
)


class _Packet:
    """Client-side state of one in-flight route."""

    __slots__ = (
        "index", "source", "target", "dest_label", "current", "header",
        "steps_left", "path", "length", "max_header_words", "phase_hops",
    )

    def __init__(
        self, index: int, source: int, target: int, budget: int
    ) -> None:
        self.index = index
        self.source = source
        self.target = target
        self.dest_label: Any = None
        self.current = source
        self.header: Any = None
        self.steps_left = budget
        self.path: List[int] = [source]
        self.length = 0.0
        self.max_header_words = 0
        self.phase_hops: Dict[str, int] = {}

    def result(self, *, failed: bool = False, error: str = "") -> RouteResult:
        return RouteResult(
            source=self.source,
            target=self.target,
            path=self.path,
            length=self.length,
            hops=len(self.path) - 1,
            max_header_words=self.max_header_words,
            phase_hops=self.phase_hops,
            failed=failed,
            error=error,
            last_header=self.header if failed else None,
        )


class ClusterRouter:
    """Routes over a running worker fleet; see the module docstring.

    Parameters
    ----------
    addresses:
        ``worker id -> (host, port)`` for every placement worker.
    placement:
        The ownership map every worker derived from the same manifest.
    identity:
        Manifest identity fields (``spec``, ``scheme``, ``name``) for
        ``describe()``-style reporting.
    timeout_s:
        Per-socket timeout; a worker that stops answering looks exactly
        like a dead one (triggers failover) instead of hanging a route.
    """

    def __init__(
        self,
        addresses: Dict[int, Tuple[str, int]],
        placement: Placement,
        *,
        identity: Optional[Dict[str, Any]] = None,
        timeout_s: float = 30.0,
    ) -> None:
        missing = sorted(
            set(range(placement.workers)) - set(addresses)
        )
        if missing:
            raise ValueError(
                f"placement spans workers 0..{placement.workers - 1} "
                f"but addresses are missing for {missing}"
            )
        self.placement = placement
        self.addresses = dict(addresses)
        self.identity = dict(identity or {})
        #: session-facing identity (mirrors LocalRouter's attributes)
        self.spec_name = self.identity.get("spec")
        self.name = self.identity.get("name")
        self.n = placement.n
        self.timeout_s = timeout_s
        self._socks: Dict[int, socket.socket] = {}
        #: workers unreachable this session (connection-level failures)
        self.dead_workers: set = set()
        #: (group, worker) copies disqualified by typed data faults
        self.quarantined: set = set()
        # client-side counters
        self.routes = 0
        self.total_hops = 0
        self.failovers = 0
        self.rpcs = 0
        self.rpc_errors = 0
        self.rpcs_by_worker: Dict[int, int] = {}
        self.frames_sent = 0
        self.frames_received = 0
        self.payload_bytes_sent = 0
        self.payload_bytes_received = 0
        self._latencies: List[float] = []
        # counter guard: _pump_once issues the per-worker FORWARD
        # requests concurrently (one thread per worker, each on its own
        # socket), so the shared counters above need a lock
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- connections ---------------------------------------------------
    def _sock(self, w: int) -> socket.socket:
        sock = self._socks.get(w)
        if sock is None:
            host, port = self.addresses[w]
            try:
                sock = socket.create_connection(
                    (host, port), timeout=self.timeout_s
                )
                # request/reply ping-pong: don't let Nagle queue a
                # small request behind an unacked reply
                sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError as exc:
                raise WorkerUnavailableError(
                    f"worker {w} unreachable at {host}:{port}: {exc}"
                ) from exc
            self._socks[w] = sock
        return sock

    def _drop_worker(self, w: int) -> None:
        sock = self._socks.pop(w, None)
        if sock is not None:
            sock.close()
        self.dead_workers.add(w)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        socks, self._socks = self._socks, {}
        for w in sorted(socks):
            socks[w].close()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- one RPC -------------------------------------------------------
    def _request(self, w: int, msg: int, value: Any) -> Any:
        """One request/reply on worker ``w``; connection-level failures
        mark the worker dead and re-raise typed."""
        payload = encode_value(value)
        started = perf_counter()
        try:
            sock = self._sock(w)
            with self._lock:
                self.frames_sent += 1
                self.payload_bytes_sent += len(payload)
            send_frame(sock, msg, payload)
            got = recv_frame(sock)
        except (WireProtocolError, WorkerUnavailableError) as exc:
            self._drop_worker(w)
            raise WorkerUnavailableError(
                f"worker {w} lost during {msg_name(msg)}: {exc}"
            ) from exc
        if got is None:
            self._drop_worker(w)
            raise WorkerUnavailableError(
                f"worker {w} closed the connection during "
                f"{msg_name(msg)}"
            )
        reply, reply_payload = got
        with self._lock:
            self._latencies.append(perf_counter() - started)
            self.frames_received += 1
            self.payload_bytes_received += len(reply_payload)
            self.rpcs += 1
            self.rpcs_by_worker[w] = self.rpcs_by_worker.get(w, 0) + 1
        if reply == REPLY_ERROR:
            with self._lock:
                self.rpc_errors += 1
            name, message = decode_error(reply_payload)
            raise_remote(name, message, worker=w)
        if reply != REPLY_OK:
            raise WireProtocolError(
                f"worker {w} replied {msg_name(reply)} to "
                f"{msg_name(msg)}"
            )
        return decode_value(reply_payload)

    # -- failover-aware group requests --------------------------------
    def _live_owner(self, g: int) -> int:
        """First owner of ``g`` that is neither dead nor quarantined
        for this group."""
        causes: Dict[int, Exception] = {}
        for w in self.placement.owners(g):
            if w in self.dead_workers:
                causes[w] = WorkerUnavailableError(
                    f"worker {w} is marked dead"
                )
                continue
            if (g, w) in self.quarantined:
                causes[w] = ShardUnavailableError(
                    f"copy of group {g} on worker {w} was quarantined"
                )
                continue
            return w
        raise ReplicaExhaustedError(
            f"every owner of group {g} is dead or quarantined "
            f"({sorted(self.placement.owners(g))})",
            causes,
        )

    def _group_request(self, g: int, msg: int, value: Any) -> Any:
        """Request against group ``g``'s owner chain with failover."""
        causes: Dict[int, Exception] = {}
        for w in self.placement.owners(g):
            if w in self.dead_workers or (g, w) in self.quarantined:
                causes[w] = WorkerUnavailableError(
                    f"worker {w} is dead or group {g} quarantined on it"
                )
                continue
            try:
                return self._request(w, msg, value)
            except _FAILOVER_ERRORS as exc:
                causes[w] = exc
                if not isinstance(exc, WorkerUnavailableError):
                    self.quarantined.add((g, w))
                self.failovers += 1
        raise ReplicaExhaustedError(
            f"every owner of group {g} failed "
            f"({sorted(self.placement.owners(g))})",
            causes,
        )

    # -- labels --------------------------------------------------------
    def label_of(self, v: int) -> Any:
        """Destination label of ``v``, served by its group's owner."""
        g = self.placement.group_of(v)
        return self._group_request(g, MSG_LABEL, [v])[0]

    def _fetch_labels(self, packets: List[_Packet]) -> None:
        """Dest labels for every packet, one LABEL RPC per live owner
        worker (targets in group order, duplicates preserved — counter
        parity with the simulator's one ``label_of`` per route).

        Each target group's labels are still served by that group's
        *currently preferred* owner — the same worker its FORWARD
        segments will land on — so batching across groups changes the
        RPC count, never which store serves which vertex.  When a
        worker's batched call fails, its groups fall back to per-group
        :meth:`_group_request`, which isolates the faulty copy and
        fails over replica by replica."""
        by_group: Dict[int, List[_Packet]] = {}
        for p in packets:
            g = self.placement.group_of(p.target)
            by_group.setdefault(g, []).append(p)
        by_worker: Dict[int, List[int]] = {}
        for g in sorted(by_group):
            by_worker.setdefault(self._live_owner(g), []).append(g)
        for w in sorted(by_worker):
            groups = by_worker[w]
            worker_packets = [p for g in groups for p in by_group[g]]
            try:
                labels = self._request(
                    w, MSG_LABEL, [p.target for p in worker_packets]
                )
            except _FAILOVER_ERRORS:
                # the batch reply cannot say which group is at fault;
                # retry group by group so _group_request can quarantine
                # the bad copy and fail over to the next replica
                self.failovers += 1
                for g in groups:
                    self._fetch_group_labels(g, by_group[g])
                continue
            self._assign_labels(labels, worker_packets, f"worker {w}")

    def _fetch_group_labels(
        self, g: int, group_packets: List[_Packet]
    ) -> None:
        """Per-group label fetch along ``g``'s replica owner chain."""
        labels = self._group_request(
            g, MSG_LABEL, [p.target for p in group_packets]
        )
        self._assign_labels(labels, group_packets, f"group {g}")

    def _assign_labels(
        self, labels: Any, packets: List[_Packet], origin: str
    ) -> None:
        if not isinstance(labels, (list, tuple)) or len(labels) != len(
            packets
        ):
            raise WireProtocolError(
                f"LABEL reply for {origin} has "
                f"{len(labels) if isinstance(labels, (list, tuple)) else '?'} "
                f"entries, want {len(packets)}"
            )
        for p, label in zip(packets, labels):
            p.dest_label = label

    # -- routing -------------------------------------------------------
    def route(
        self, source: int, target: int, max_hops: Optional[int] = None
    ) -> RouteResult:
        """Route one message; same contract as ``simulator.route``."""
        return self.route_batch([(source, target)], max_hops=max_hops)[0]

    def route_batch(
        self,
        pairs: List[Tuple[int, int]],
        *,
        max_hops: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        on_route_done: Optional[Callable[[int, RouteResult], None]] = None,
    ) -> List[RouteResult]:
        """Route every pair, batching FORWARD segments per worker.

        ``on_route_done(index, result)`` fires as each route completes
        (the chaos harness's deterministic kill point).  Raises
        :class:`RoutingLoopError` / :class:`MisdeliveryError` exactly
        where the single-process loop would.
        """
        if max_hops is None:
            max_hops = 8 * self.n + 64
        for s, t in pairs:
            for v in (s, t):
                if not 0 <= v < self.n:
                    raise ValueError(
                        f"vertex {v} outside 0..{self.n - 1}"
                    )
        # the simulator's loop runs max_hops + 1 step() calls
        packets = [
            _Packet(i, s, t, max_hops + 1)
            for i, (s, t) in enumerate(pairs)
        ]
        self._fetch_labels(packets)
        results: List[Optional[RouteResult]] = [None] * len(pairs)
        active = list(packets)
        while active:
            active = self._pump_once(
                active, results, max_hops, batch_size, on_route_done
            )
        return [r for r in results if r is not None]

    def _pump_once(
        self,
        active: List[_Packet],
        results: List[Optional[RouteResult]],
        max_hops: int,
        batch_size: int,
        on_route_done: Optional[Callable[[int, RouteResult], None]],
    ) -> List[_Packet]:
        """One pump iteration: bucket packets by live owner, send one
        batched FORWARD per worker, apply segments.  Returns the
        packets still in flight."""
        # Per-worker drive sets: every group the worker is *currently
        # preferred* owner of.  The worker steps packets only inside
        # its drive set, so — absent failures — every vertex is loaded
        # and stepped on exactly one worker and summed serve counters
        # match the single-process store exactly.  A set staled by a
        # mid-iteration death costs one extra handoff, never a wrong
        # hop.
        drive_sets: Dict[int, List[int]] = {}
        for g in range(self.placement.groups):
            try:
                drive_sets.setdefault(self._live_owner(g), []).append(g)
            except ReplicaExhaustedError:
                continue  # raises below iff a packet actually needs it
        buckets: Dict[int, List[_Packet]] = {}
        for p in active:
            w = self._live_owner(self.placement.group_of(p.current))
            buckets.setdefault(w, []).append(p)
        plans = [
            (
                w,
                [
                    buckets[w][start:start + batch_size]
                    for start in range(0, len(buckets[w]), batch_size)
                ],
            )
            for w in sorted(buckets)
        ]
        # Issue the per-worker FORWARDs concurrently — each worker has
        # its own socket and steps its own packets, so the round trips
        # and the workers' step/codec work overlap; segments are then
        # applied serially in worker order, keeping results and
        # failover decisions deterministic.  Unexpected exceptions
        # propagate through Future.result() in that same order.
        if len(plans) > 1:
            if self._pool is None:
                # persistent: spawning threads per pump iteration costs
                # more than the round trips it overlaps
                self._pool = ThreadPoolExecutor(
                    max_workers=self.placement.workers,
                    thread_name_prefix="cluster-router",
                )
            futures = [
                (
                    w,
                    chunks,
                    self._pool.submit(
                        self._drive_chunks,
                        w,
                        chunks,
                        drive_sets.get(w, []),
                    ),
                )
                for w, chunks in plans
            ]
            outcomes = [
                (w, chunks, f.result()) for w, chunks, f in futures
            ]
        else:
            outcomes = [
                (w, chunks, self._drive_chunks(
                    w, chunks, drive_sets.get(w, [])
                ))
                for w, chunks in plans
            ]
        still_active: List[_Packet] = []
        for w, chunks, entries in outcomes:
            for chunk, replies in zip(chunks, entries):
                if replies is None:
                    # connection-level loss (or a death earlier in this
                    # iteration): every packet of the chunk fails over
                    # to its group's next owner on the next pump
                    self.failovers += len(chunk)
                    still_active.extend(chunk)
                    continue
                if not isinstance(replies, (list, tuple)) or len(
                    replies
                ) != len(chunk):
                    raise WireProtocolError(
                        f"FORWARD reply from worker {w} has "
                        f"{len(replies) if isinstance(replies, (list, tuple)) else '?'} "
                        f"segments, want {len(chunk)}"
                    )
                for p, segment in zip(chunk, replies):
                    done = self._apply_segment(
                        p, segment, w, max_hops, results, on_route_done
                    )
                    if not done:
                        still_active.append(p)
        return still_active

    def _drive_chunks(
        self,
        w: int,
        chunks: List[List[_Packet]],
        drive: List[int],
    ) -> List[Optional[Any]]:
        """Send worker ``w`` its FORWARD chunks sequentially on its own
        socket; ``None`` marks a chunk lost to a connection failure
        (the serial phase re-buckets it)."""
        entries: List[Optional[Any]] = []
        for chunk in chunks:
            if w in self.dead_workers:
                entries.append(None)
                continue
            payload = (
                drive,
                [
                    (p.current, p.header, p.dest_label, p.steps_left)
                    for p in chunk
                ],
            )
            try:
                entries.append(self._request(w, MSG_FORWARD, payload))
            except WorkerUnavailableError:
                entries.append(None)
        return entries

    def _apply_segment(
        self,
        p: _Packet,
        segment: Any,
        w: int,
        max_hops: int,
        results: List[Optional[RouteResult]],
        on_route_done: Optional[Callable[[int, RouteResult], None]],
    ) -> bool:
        """Replay one worker segment onto packet ``p``; True when the
        route finished (result recorded)."""
        if not isinstance(segment, dict):
            raise WireProtocolError(
                f"FORWARD segment from worker {w} is "
                f"{type(segment).__name__}, want a dict"
            )
        state = segment.get("state")
        if state == "error":
            # typed per-packet fault: quarantine this copy and retry
            # the packet elsewhere — but first replay the partial
            # segment the worker completed before failing, so the
            # packet's position and accounting stay exact
            self._replay_hops(p, segment, w)
            name, _message = segment.get("error", ("?", "?"))
            g = self.placement.group_of(p.current)
            if name in ("ShardUnavailableError", "ShardIntegrityError",
                        "ReplicaExhaustedError"):
                self.quarantined.add((g, w))
                self.failovers += 1
                return False
            raise_remote(name, _message, worker=w)
        self._replay_hops(p, segment, w)
        if state == "delivered":
            if p.current != p.target:
                reason = (
                    f"scheme delivered at {p.current}, expected "
                    f"{p.target}"
                )
                raise MisdeliveryError(
                    reason,
                    partial_path=p.path,
                    last_header=p.header,
                    result=p.result(failed=True, error=reason),
                )
            result = p.result()
            results[p.index] = result
            self.routes += 1
            self.total_hops += result.hops
            if on_route_done is not None:
                on_route_done(p.index, result)
            return True
        if state not in ("handoff", "exhausted"):
            raise WireProtocolError(
                f"FORWARD segment from worker {w} has unknown state "
                f"{state!r}"
            )
        if p.steps_left <= 0:
            reason = (
                f"message {p.source}->{p.target} not delivered within "
                f"{max_hops} hops; path prefix: {p.path[:20]}..."
            )
            raise RoutingLoopError(
                reason,
                partial_path=p.path,
                last_header=p.header,
                result=p.result(failed=True, error=reason),
            )
        return False

    def _replay_hops(self, p: _Packet, segment: Any, w: int) -> None:
        """Apply a segment's per-hop trace with the simulator's exact
        accumulation order."""
        hops = segment.get("hops", [])
        if not isinstance(hops, (list, tuple)):
            raise WireProtocolError(
                f"segment hops from worker {w} is "
                f"{type(hops).__name__}, want a list"
            )
        for hop in hops:
            if not (isinstance(hop, tuple) and len(hop) == 4):
                raise WireProtocolError(
                    f"segment hop {hop!r} from worker {w} is not "
                    f"(next, weight, words, phase)"
                )
            nxt, weight, words, phase = hop
            p.path.append(nxt)
            p.length += weight
            if words > p.max_header_words:
                p.max_header_words = words
            p.phase_hops[phase] = p.phase_hops.get(phase, 0) + 1
        steps = segment.get("steps", 0)
        if not isinstance(steps, int) or isinstance(steps, bool):
            raise WireProtocolError(
                f"segment steps {steps!r} from worker {w} is not an int"
            )
        p.steps_left -= steps
        p.current = segment.get("at", p.current)
        p.header = segment.get("header")

    # -- aggregation ---------------------------------------------------
    def _latency_percentiles(self) -> Dict[str, float]:
        if not self._latencies:
            return {"count": 0}
        ordered = sorted(self._latencies)
        count = len(ordered)

        def at(q: float) -> float:
            return ordered[int(q * (count - 1))] * 1000.0

        return {
            "count": count,
            "p50_ms": at(0.50),
            "p90_ms": at(0.90),
            "p99_ms": at(0.99),
            "max_ms": ordered[-1] * 1000.0,
        }

    def worker_status(self, w: int) -> Dict[str, Any]:
        """One worker's ``MSG_STATUS`` dict (raises if unreachable)."""
        return self._request(w, MSG_STATUS, ())

    def cluster_stats(self) -> Dict[str, Any]:
        """The end-to-end serving picture: client counters, true wire
        cost, latency percentiles, and per-worker serve stats summed
        across the live fleet."""
        per_worker: Dict[int, Any] = {}
        for w in range(self.placement.workers):
            if w in self.dead_workers:
                per_worker[w] = None
                continue
            try:
                per_worker[w] = self.worker_status(w)
            except WorkerUnavailableError:
                per_worker[w] = None
        live = [s for s in per_worker.values() if s is not None]
        store_totals: Dict[str, int] = {}
        for key in (
            "loads", "hits", "bytes_read", "retries",
            "checksum_failures", "failovers", "repairs",
        ):
            store_totals[key] = sum(s["store"][key] for s in live)
        header_totals: Dict[str, int] = {}
        for key in ("headers_encoded", "header_bytes"):
            header_totals[key] = sum(s["header"][key] for s in live)
        header_totals["max_header_bytes"] = max(
            (s["header"]["max_header_bytes"] for s in live), default=0
        )
        return {
            "workers": self.placement.workers,
            "replicas": self.placement.replicas,
            "groups": self.placement.groups,
            "n": self.n,
            "dead_workers": sorted(self.dead_workers),
            "quarantined": sorted(self.quarantined),
            "routes": self.routes,
            "total_hops": self.total_hops,
            "failovers": self.failovers,
            "rpcs": self.rpcs,
            "rpc_errors": self.rpc_errors,
            "rpcs_by_worker": dict(sorted(self.rpcs_by_worker.items())),
            "wire": {
                "frames_sent": self.frames_sent,
                "frames_received": self.frames_received,
                "frame_header_bytes": (
                    (self.frames_sent + self.frames_received)
                    * FRAME_BYTES
                ),
                "payload_bytes_sent": self.payload_bytes_sent,
                "payload_bytes_received": self.payload_bytes_received,
            },
            "latency": self._latency_percentiles(),
            "store": store_totals,
            "header": header_totals,
            "per_worker": per_worker,
        }

    def health(self) -> Dict[str, Any]:
        """One-look cluster health, same vocabulary as store health.

        ``status`` degrades when any worker is dead/quarantined or any
        live store reports degradation; ``serving`` stays True as long
        as every group still has a live, unquarantined owner.
        """
        serving = True
        for g in range(self.placement.groups):
            owners = self.placement.owners(g)
            if all(
                w in self.dead_workers or (g, w) in self.quarantined
                for w in owners
            ):
                serving = False
                break
        worker_health: Dict[int, Any] = {}
        degraded = bool(
            self.dead_workers or self.quarantined or self.failovers
        )
        for w in range(self.placement.workers):
            if w in self.dead_workers:
                worker_health[w] = {"status": "dead"}
                degraded = True
                continue
            try:
                status = self.worker_status(w)
            except WorkerUnavailableError:
                worker_health[w] = {"status": "dead"}
                degraded = True
                continue
            worker_health[w] = status["health"]
            if status["health"].get("status") != "ok":
                degraded = True
        return {
            "status": "degraded" if degraded else "ok",
            "serving": serving,
            "workers": worker_health,
            "dead_workers": sorted(self.dead_workers),
            "quarantined": sorted(self.quarantined),
            "failovers": self.failovers,
        }

    def shutdown_workers(self) -> List[int]:
        """Best-effort ``MSG_SHUTDOWN`` to every live worker; returns
        the ids that acknowledged."""
        acknowledged: List[int] = []
        for w in range(self.placement.workers):
            if w in self.dead_workers:
                continue
            try:
                if self._request(w, MSG_SHUTDOWN, ()) is True:
                    acknowledged.append(w)
            except (WorkerUnavailableError, WireProtocolError):
                continue
        return acknowledged

    def __repr__(self) -> str:
        return (
            f"ClusterRouter(workers={self.placement.workers}, "
            f"replicas={self.placement.replicas}, n={self.n}, "
            f"routes={self.routes}, failovers={self.failovers})"
        )
