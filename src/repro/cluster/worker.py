"""A cluster worker: one process serving its owned pack groups over RPC.

Each worker owns the slice of the packed layout its
:class:`~repro.cluster.placement.Placement` assignment names — group
``g`` as replica copy ``k`` is mapped from
``replica/<k>/groups/<g>.pack`` — through a
:class:`~repro.routing.serving.PackedShardStore` restricted to exactly
those paths (``group_paths``), stepped by the very same
:class:`~repro.routing.serving.LocalRouter` the single-process serving
stack uses.  That reuse is the whole correctness argument: a worker's
step decisions, header accounting and store counters are produced by
the identical code the hop-parity tests already pin against the
in-memory schemes — the cluster only changes *where* each step runs.

``MSG_FORWARD`` stepping contract
---------------------------------
The payload is ``(drive groups, packets)``: the client names the groups
this worker should step through — the groups it is the *currently
preferred* owner of, given which workers are alive.  Driving strictly
inside that set (instead of everything the worker could serve) keeps
serve-counter parity with the single process exact: absent failures the
drive set is the worker's primary range, so every vertex is loaded and
stepped on exactly one worker, and summed per-worker store counters
equal the single store's.  For each packet ``(current, header,
dest_label, budget)`` the worker replays the simulator's routing loop
(see :func:`repro.routing.simulator.route`) while the current vertex
stays inside the drive set and step budget remains:

* each loop iteration consumes one ``step()`` call from ``budget`` —
  exactly the simulator's ``max_hops + 1`` accounting,
* a ``Forward`` records ``(next vertex, edge weight, header words,
  phase tag)`` — the per-hop tuple the client replays to reconstruct
  ``length`` / ``max_header_words`` / ``phase_hops`` bit-for-bit
  (weights are re-summed hop by hop client-side, so float accumulation
  order matches the single-process loop exactly),
* the segment ends with ``state`` = ``"delivered"`` (a ``Deliver``
  action; misdelivery is judged client-side, the worker never learns
  the target), ``"handoff"`` (next vertex owned elsewhere) or
  ``"exhausted"`` (budget spent), and per-packet serving failures come
  back as ``state`` = ``"error"`` with the typed ``(type, message)``
  pair so one bad shard fails over without poisoning its batch.

Startup reports over the spawn pipe: ``("ready", port)`` once the
server is bound, or ``("error", type name, message)`` for typed
failures — notably :class:`~repro.routing.serving.ShardUnavailableError`
for a partially-written replica directory (missing ``groups/`` subdir),
which the driver re-raises typed instead of a raw ``OSError``.
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..routing.faults import FaultInjector
from ..routing.model import Deliver, Forward, words_of
from ..routing.serving import (
    LocalRouter,
    PackedShardStore,
    ServingError,
    ShardUnavailableError,
    _load_manifest,
    group_path,
    replica_root,
)
from ..routing.shard_codec import (
    ShardCodecError,
    decode_value,
    encode_node_table,
    encode_value,
)
from .wire import (
    MSG_FORWARD,
    MSG_LABEL,
    MSG_LOOKUP,
    MSG_SHUTDOWN,
    MSG_STATUS,
    NotOwnerError,
    REPLY_ERROR,
    REPLY_OK,
    WireProtocolError,
    WorkerUnavailableError,
    error_payload,
    msg_name,
    recv_frame,
    send_frame,
)

__all__ = [
    "WorkerServer",
    "build_worker_store",
    "run_worker",
    "phase_of",
]


def phase_of(header: Any) -> str:
    """The routing-phase tag of a header — the simulator's convention
    (``header[0]`` when it is a str-tagged tuple, else ``"?"``),
    duplicated bit-for-bit so ``phase_hops`` reconciles across the
    wire."""
    if isinstance(header, tuple) and header and isinstance(header[0], str):
        return header[0]
    return "?"


def build_worker_store(
    shard_dir: str,
    assignment: Dict[int, int],
    *,
    max_resident: Optional[int] = None,
    fault_spec: Optional[Dict[str, Any]] = None,
) -> PackedShardStore:
    """The restricted store serving one worker's assignment.

    Validates — before mapping anything — that every replica root the
    assignment touches actually finished landing: a ``replica/<r>``
    directory without its ``groups/`` subdir is a partially-written
    replica set (an interrupted ``write_shards`` or botched copy) and
    surfaces as :class:`ShardUnavailableError` naming the replica, the
    same typed translation :class:`ReplicatedShardStore` applies.
    """
    manifest = _load_manifest(shard_dir)
    replicas = int(manifest.get("replicas", 1))
    group_paths: Dict[int, str] = {}
    checked: Dict[int, str] = {}
    for g, k in sorted(assignment.items()):
        if replicas == 1:
            if k != 0:
                raise ValueError(
                    f"assignment places group {g} as replica copy {k} "
                    f"but {shard_dir!r} is unreplicated"
                )
            root = shard_dir
        else:
            if not 0 <= k < replicas:
                raise ValueError(
                    f"assignment places group {g} as replica copy {k} "
                    f"but {shard_dir!r} has replicas 0..{replicas - 1}"
                )
            root = checked.get(k)
            if root is None:
                root = replica_root(shard_dir, k)
                if not os.path.isdir(os.path.join(root, "groups")):
                    raise ShardUnavailableError(
                        f"replica {k} of {shard_dir!r} is partially "
                        f"written: its groups/ directory is missing "
                        f"({os.path.join(root, 'groups')}) — refusing "
                        f"to start a worker over it; repair() can "
                        f"rewrite the replica from a healthy copy"
                    )
                checked[k] = root
        group_paths[g] = group_path(root, g)
    io = None
    if fault_spec is not None:
        io = FaultInjector.from_spec(fault_spec)
    return PackedShardStore(
        shard_dir,
        manifest=manifest,
        max_resident=max_resident,
        group_paths=group_paths,
        io=io,
    )


class _RequestHandler(socketserver.BaseRequestHandler):
    """One client connection: a loop of request/reply frames."""

    def handle(self) -> None:
        server: "WorkerServer" = self.server  # type: ignore[assignment]
        # request/reply ping-pong: never let Nagle hold a reply back
        # waiting for a delayed ACK
        self.request.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        while True:
            try:
                got = recv_frame(self.request)
            except (WireProtocolError, WorkerUnavailableError):
                server.count_drop()
                return
            if got is None:
                return  # clean close: session over
            msg, payload = got
            try:
                reply = server.dispatch(msg, payload)
            except (ServingError, ShardCodecError, ValueError) as exc:
                server.count_error(exc)
                reply = (REPLY_ERROR, error_payload(exc))
            try:
                send_frame(self.request, reply[0], reply[1])
            except (WireProtocolError, WorkerUnavailableError):
                server.count_drop()
                return
            if msg == MSG_SHUTDOWN:
                # shutdown() blocks until serve_forever returns, so it
                # must not run on this handler thread
                threading.Thread(
                    target=server.shutdown, daemon=True
                ).start()
                return


class WorkerServer(socketserver.ThreadingTCPServer):
    """The worker's TCP server over its restricted store + engine."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        worker_id: int,
        store: PackedShardStore,
        engine: LocalRouter,
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.worker_id = worker_id
        self.store = store
        self.engine = engine
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = {}
        self.error_replies = 0
        self.dropped_connections = 0

    # -- counters ------------------------------------------------------
    def count_error(self, exc: BaseException) -> None:
        with self._lock:
            self.error_replies += 1

    def count_drop(self) -> None:
        with self._lock:
            self.dropped_connections += 1

    def _count(self, msg: int) -> None:
        name = msg_name(msg)
        with self._lock:
            self.requests[name] = self.requests.get(name, 0) + 1

    # -- dispatch ------------------------------------------------------
    def dispatch(self, msg: int, payload: bytes) -> Tuple[int, bytes]:
        self._count(msg)
        if msg == MSG_STATUS:
            return REPLY_OK, encode_value(self.status())
        if msg == MSG_SHUTDOWN:
            return REPLY_OK, encode_value(True)
        value = decode_value(payload)
        if msg == MSG_LABEL:
            return REPLY_OK, encode_value(self._labels(value))
        if msg == MSG_LOOKUP:
            return REPLY_OK, self._lookup(value)
        if msg == MSG_FORWARD:
            return REPLY_OK, encode_value(self._forward(value))
        raise WireProtocolError(
            f"worker {self.worker_id} does not speak {msg_name(msg)}"
        )

    # -- request implementations --------------------------------------
    def _require_owned(self, v: int) -> int:
        if not isinstance(v, int) or isinstance(v, bool):
            raise WireProtocolError(
                f"vertex must be an int, got {v!r}"
            )
        if not 0 <= v < self.store.n:
            raise ValueError(
                f"vertex {v} outside 0..{self.store.n - 1}"
            )
        if not self.store.owns(v):
            raise NotOwnerError(
                f"worker {self.worker_id} does not own vertex {v} "
                f"(group {self.store.group_of(v)}) — the client's "
                f"placement disagrees with this worker's assignment"
            )
        return v

    def _labels(self, value: Any) -> List[Any]:
        if not isinstance(value, (list, tuple)):
            raise WireProtocolError(
                f"LABEL payload must be a vertex list, got "
                f"{type(value).__name__}"
            )
        # one label_of per requested entry, duplicates preserved — the
        # exact node() call count the single-process simulator makes
        return [
            self.engine.label_of(self._require_owned(v)) for v in value
        ]

    def _lookup(self, value: Any) -> bytes:
        v = self._require_owned(value)
        return encode_node_table(self.store.node(v))

    def _forward(self, value: Any) -> List[Dict[str, Any]]:
        if not (isinstance(value, tuple) and len(value) == 2):
            raise WireProtocolError(
                f"FORWARD payload must be (drive groups, packets), got "
                f"{type(value).__name__}"
            )
        raw_drive, packets = value
        if not isinstance(raw_drive, (list, tuple)) or not isinstance(
            packets, (list, tuple)
        ):
            raise WireProtocolError(
                f"FORWARD payload must be (drive groups, packets), got "
                f"({type(raw_drive).__name__}, "
                f"{type(packets).__name__})"
            )
        owned = set(self.store.owned_groups() or ())
        for g in raw_drive:
            if g not in owned:
                raise NotOwnerError(
                    f"worker {self.worker_id} does not own drive group "
                    f"{g!r} — the client's placement disagrees with "
                    f"this worker's assignment"
                )
        drive = frozenset(raw_drive)
        return [self._drive(packet, drive) for packet in packets]

    def _drive(
        self, packet: Any, drive: "frozenset"
    ) -> Dict[str, Any]:
        """Step one packet until delivery, handoff, or budget end."""
        if not (isinstance(packet, tuple) and len(packet) == 4):
            raise WireProtocolError(
                f"FORWARD packet must be (current, header, dest_label, "
                f"budget), got {packet!r}"
            )
        current, header, dest_label, budget = packet
        self._require_owned(current)
        if not isinstance(budget, int) or isinstance(budget, bool):
            raise WireProtocolError(
                f"packet budget must be an int, got {budget!r}"
            )
        engine = self.engine
        store = self.store
        steps = 0
        hops: List[Tuple[int, float, int, str]] = []
        state = "exhausted"
        try:
            while True:
                if store.group_of(current) not in drive:
                    state = "handoff"
                    break
                if steps >= budget:
                    state = "exhausted"
                    break
                action = engine.step(current, header, dest_label)
                steps += 1
                if isinstance(action, Deliver):
                    state = "delivered"
                    break
                if not isinstance(action, Forward):
                    raise WireProtocolError(
                        f"scheme step at {current} returned "
                        f"{action!r}, not Deliver/Forward"
                    )
                nxt, weight = engine.local_edge(current, action.port)
                header = action.header
                hops.append(
                    (nxt, weight, words_of(header), phase_of(header))
                )
                current = nxt
        except (ServingError, ShardCodecError) as exc:
            # isolate the fault to this packet: its partial segment is
            # reported with the typed error, the rest of the batch
            # proceeds, and the client fails this packet over
            self.count_error(exc)
            return {
                "state": "error",
                "error": (type(exc).__name__, str(exc)),
                "at": current,
                "header": header,
                "steps": steps,
                "hops": hops,
            }
        return {
            "state": state,
            "at": current,
            "header": header,
            "steps": steps,
            "hops": hops,
        }

    # -- status --------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        owned = self.store.owned_groups()
        with self._lock:
            requests = dict(self.requests)
            error_replies = self.error_replies
            dropped = self.dropped_connections
        return {
            "worker": self.worker_id,
            "spec": self.engine.spec_name,
            "name": self.engine.name,
            "n": self.store.n,
            "owned_groups": list(owned) if owned is not None else None,
            "store": self.store.stats(),
            "header": self.engine.header_stats(),
            "requests": requests,
            "error_replies": error_replies,
            "dropped_connections": dropped,
            "health": self.store.health(),
        }


def run_worker(
    conn: Any,
    *,
    shard_dir: str,
    worker_id: int,
    assignment: Dict[int, int],
    host: str = "127.0.0.1",
    port: int = 0,
    max_resident: Optional[int] = None,
    fault_spec: Optional[Dict[str, Any]] = None,
) -> None:
    """Worker process entry point (a ``multiprocessing`` target).

    Builds the restricted store and serving engine, binds the RPC
    server (``port=0`` = ephemeral), reports ``("ready", port)`` or a
    typed ``("error", type name, message)`` over ``conn``, then serves
    until :data:`~repro.cluster.wire.MSG_SHUTDOWN` (or the process is
    killed — the chaos case the router's failover covers).
    """
    store: Optional[PackedShardStore] = None
    server: Optional[WorkerServer] = None
    try:
        store = build_worker_store(
            shard_dir,
            assignment,
            max_resident=max_resident,
            fault_spec=fault_spec,
        )
        engine = LocalRouter(store)
        server = WorkerServer(
            (host, port),
            worker_id=worker_id,
            store=store,
            engine=engine,
        )
    except (ServingError, ShardCodecError, ValueError, OSError) as exc:
        conn.send(("error", type(exc).__name__, str(exc)))
        conn.close()
        if server is not None:
            server.server_close()
        if store is not None:
            store.close()
        return
    conn.send(("ready", server.server_address[1]))
    conn.close()
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()
        store.close()
