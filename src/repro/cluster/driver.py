"""Cluster lifecycle: start workers, hand out routers, kill, stop.

:func:`start_cluster` spawns one OS process per placement worker (stdlib
:mod:`multiprocessing` — the workers are real processes, a SIGKILL to
one is indistinguishable from a node loss) over a shard directory laid
down by ``write_shards(packed=True[, replicas=R])``.  Each worker binds
an ephemeral TCP port, builds its restricted store from
``placement.assignment(w)``, and reports ``("ready", port)`` — or a
typed startup failure — back over a :func:`multiprocessing.Pipe` before
the driver declares the cluster up.  A worker that refuses to start
(e.g. a partially-written replica directory, surfaced as
:class:`~repro.routing.serving.ShardUnavailableError`) fails the whole
``start_cluster`` call with that same typed error, workers already
running torn down.

The returned :class:`ClusterHandle` owns the processes.  ``.router()``
connects a :class:`~repro.cluster.router.ClusterRouter`;
``.kill_worker(w)`` is the chaos harness's hammer (SIGKILL, no
cleanup); ``.stop()`` shuts the fleet down politely (``MSG_SHUTDOWN``
RPC, then join, then terminate stragglers).  ``.spec()`` serialises
everything a later process needs to reconnect — the ``cluster.json``
the CLI writes — and :func:`connect_cluster` rebuilds a router from it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from typing import Any, Dict, List, Optional, Tuple

from ..routing.serving import ServingError, _load_manifest
from .placement import Placement
from .router import ClusterRouter
from .wire import ClusterError, raise_remote
from .worker import run_worker

__all__ = [
    "ClusterHandle",
    "start_cluster",
    "connect_cluster",
    "save_cluster_spec",
    "load_cluster_spec",
]

#: manifest identity fields carried into the cluster spec
_IDENTITY_FIELDS = ("spec", "scheme", "name")


class ClusterHandle:
    """A running worker fleet (owns the processes and their pipes)."""

    def __init__(
        self,
        *,
        shard_dir: str,
        placement: Placement,
        processes: List[multiprocessing.Process],
        addresses: Dict[int, Tuple[str, int]],
        identity: Dict[str, Any],
    ) -> None:
        self.shard_dir = shard_dir
        self.placement = placement
        self.processes = processes
        self.addresses = addresses
        self.identity = identity
        self._stopped = False

    def router(self, **kwargs: Any) -> ClusterRouter:
        """A fresh :class:`ClusterRouter` over this fleet."""
        return ClusterRouter(
            self.addresses,
            self.placement,
            identity=self.identity,
            **kwargs,
        )

    def alive(self) -> List[int]:
        """Worker ids whose processes are still running."""
        return [
            w
            for w, proc in enumerate(self.processes)
            if proc.is_alive()
        ]

    def kill_worker(self, w: int) -> None:
        """SIGKILL worker ``w`` — the chaos harness's node loss.

        No shutdown handshake, no flush: connections to it break
        mid-frame, exactly like a machine dropping off the network.
        """
        proc = self.processes[w]
        proc.kill()
        proc.join(timeout=10.0)

    def stop(self) -> None:
        """Stop every worker: polite SHUTDOWN RPC first, then join,
        then terminate whatever is left."""
        if self._stopped:
            return
        self._stopped = True
        if any(proc.is_alive() for proc in self.processes):
            try:
                with self.router(timeout_s=5.0) as router:
                    router.shutdown_workers()
            except (ServingError, OSError):
                pass  # falling back to terminate below
        for proc in self.processes:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            proc.close()

    def spec(self) -> Dict[str, Any]:
        """JSON-able reconnect spec (the ``cluster.json`` contents)."""
        out: Dict[str, Any] = {
            "shard_dir": os.path.abspath(self.shard_dir),
            "placement": self.placement.spec(),
            "addresses": {
                str(w): list(addr)
                for w, addr in sorted(self.addresses.items())
            },
        }
        out.update(self.identity)
        return out

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"ClusterHandle(workers={self.placement.workers}, "
            f"alive={len(self.alive())}, shard_dir={self.shard_dir!r})"
        )


def start_cluster(
    shard_dir: str,
    *,
    workers: int,
    max_resident: Optional[int] = None,
    fault_spec: Optional[Dict[str, Any]] = None,
    host: str = "127.0.0.1",
    startup_timeout_s: float = 30.0,
) -> ClusterHandle:
    """Start ``workers`` processes over ``shard_dir`` and wait until
    every one is serving.  See the module docstring."""
    manifest = _load_manifest(shard_dir)
    placement = Placement.from_manifest(manifest, workers=workers)
    identity = {
        field: manifest.get(field) for field in _IDENTITY_FIELDS
    }
    processes: List[multiprocessing.Process] = []
    pipes = []
    addresses: Dict[int, Tuple[str, int]] = {}
    try:
        for w in range(workers):
            parent_conn, child_conn = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=run_worker,
                args=(child_conn,),
                kwargs={
                    "shard_dir": shard_dir,
                    "worker_id": w,
                    "assignment": placement.assignment(w),
                    "host": host,
                    "max_resident": max_resident,
                    "fault_spec": fault_spec,
                },
                daemon=True,
                name=f"repro-cluster-worker-{w}",
            )
            proc.start()
            child_conn.close()
            processes.append(proc)
            pipes.append(parent_conn)
        for w, parent_conn in enumerate(pipes):
            if not parent_conn.poll(startup_timeout_s):
                raise ClusterError(
                    f"worker {w} did not report within "
                    f"{startup_timeout_s:.0f}s of starting"
                )
            try:
                report = parent_conn.recv()
            except EOFError as exc:
                raise ClusterError(
                    f"worker {w} died before reporting its port"
                ) from exc
            if (
                isinstance(report, tuple)
                and len(report) == 2
                and report[0] == "ready"
            ):
                addresses[w] = (host, int(report[1]))
            elif (
                isinstance(report, tuple)
                and len(report) == 3
                and report[0] == "error"
            ):
                raise_remote(report[1], report[2], worker=w)
            else:
                raise ClusterError(
                    f"worker {w} sent malformed startup report "
                    f"{report!r}"
                )
    except BaseException:
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)
        raise
    finally:
        for parent_conn in pipes:
            parent_conn.close()
    return ClusterHandle(
        shard_dir=shard_dir,
        placement=placement,
        processes=processes,
        addresses=addresses,
        identity=identity,
    )


def connect_cluster(spec: Dict[str, Any], **kwargs: Any) -> ClusterRouter:
    """A :class:`ClusterRouter` over an already-running fleet,
    reconstructed from a :meth:`ClusterHandle.spec` dict."""
    placement_spec = spec.get("placement")
    if not isinstance(placement_spec, dict):
        raise ValueError(
            f"cluster spec has no placement dict: {spec!r}"
        )
    placement = Placement(
        n=int(placement_spec["n"]),
        group_size=int(placement_spec["group_size"]),
        workers=int(placement_spec["workers"]),
        replicas=int(placement_spec["replicas"]),
    )
    raw_addresses = spec.get("addresses")
    if not isinstance(raw_addresses, dict):
        raise ValueError(
            f"cluster spec has no addresses dict: {spec!r}"
        )
    addresses = {
        int(w): (str(addr[0]), int(addr[1]))
        for w, addr in raw_addresses.items()
    }
    identity = {
        field: spec.get(field) for field in _IDENTITY_FIELDS
    }
    return ClusterRouter(
        addresses, placement, identity=identity, **kwargs
    )


def save_cluster_spec(path: str, spec: Dict[str, Any]) -> None:
    """Write a reconnect spec as JSON (the CLI's ``cluster.json``)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(spec, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_cluster_spec(path: str) -> Dict[str, Any]:
    """Read and shape-check a reconnect spec written by
    :func:`save_cluster_spec`."""
    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise ValueError(
            f"cluster spec {path!r} is {type(spec).__name__}, "
            f"want a JSON object"
        )
    return spec
