"""Length-prefixed binary RPC protocol between cluster client and workers.

One frame per message, in either direction::

    <2s magic "RC"> <B version> <B msg type> <I payload length> <payload>

The 8-byte header is packed with ``_FRAME`` (``"<2sBBI"``, declared in
:mod:`repro.analysis.layouts` and audited by CODEC001, exactly like the
shard codec's pack header) and versioned like the shard layouts: a
reader refuses a frame whose magic or version it does not speak, so a
protocol revision bumps ``WIRE_VERSION`` and old/new processes fail
loudly instead of misparsing each other.

Payloads reuse the shard codec's self-describing tagged value encoding
(:func:`repro.routing.shard_codec.encode_value`): headers, labels,
status dicts and per-hop traces cross the wire in the exact format the
shards on disk already commit to — no second serialization dialect to
audit.  The one exception is the ``MSG_LOOKUP`` reply, whose payload is
the raw :func:`encode_node_table` bytes of the requested shard (the
value codec carries no bytes leaf, and the shard codec already *is* the
byte encoding of a record).

Message types
-------------
``MSG_STATUS``
    ``()`` -> the worker's status dict (store counters, header stats,
    request counters, health).
``MSG_LABEL``
    ``[v, ...]`` -> ``[label, ...]``, answered from the worker's owned
    shards (duplicates preserved — the counter-parity tests depend on
    one ``node(v)`` call per requested label, exactly like the
    single-process simulator).
``MSG_LOOKUP``
    ``v`` -> raw shard bytes of vertex ``v`` (spot checks, tooling).
``MSG_FORWARD``
    ``([drive group, ...], [(current, header, dest_label, budget),
    ...])`` -> per-packet segment results; the drive-group list names
    the groups the worker should step through this round (see
    :mod:`repro.cluster.worker` for the stepping contract).
``MSG_SHUTDOWN``
    ``()`` -> ``True``; the worker stops serving after replying.

Every reply is ``REPLY_OK`` or ``REPLY_ERROR``; an error payload is the
``(type name, message)`` of a **typed** exception —
:class:`~repro.routing.serving.ServingError` /
:class:`~repro.routing.shard_codec.ShardCodecError` subclasses or the
cluster errors below — and :func:`raise_remote` re-raises it as the
same type client-side (the contract ERR001 statically enforces on every
``raise`` in these modules).  An unknown type degrades to
:class:`ClusterError`, never to a silent string.
"""

from __future__ import annotations

import socket
import struct
from typing import Any, Dict, Optional, Tuple, Type

from ..routing.serving import (
    ReplicaExhaustedError,
    ServingError,
    ShardAccountingError,
    ShardIntegrityError,
    ShardUnavailableError,
    WireContractError,
)
from ..routing.shard_codec import (
    ChecksumError,
    ShardCodecError,
    decode_value,
    encode_value,
)

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "FRAME_BYTES",
    "MAX_PAYLOAD",
    "MSG_STATUS",
    "MSG_LABEL",
    "MSG_LOOKUP",
    "MSG_FORWARD",
    "MSG_SHUTDOWN",
    "REPLY_OK",
    "REPLY_ERROR",
    "ClusterError",
    "WireProtocolError",
    "NotOwnerError",
    "WorkerUnavailableError",
    "send_frame",
    "recv_frame",
    "send_value",
    "decode_error",
    "error_payload",
    "raise_remote",
    "msg_name",
]

WIRE_MAGIC = b"RC"
WIRE_VERSION = 1
#: frame header: magic, version, message type, payload byte length
_FRAME = struct.Struct("<2sBBI")
FRAME_BYTES = 8
#: refuse absurd frames before allocating for them (64 MiB)
MAX_PAYLOAD = 67108864

MSG_STATUS = 1
MSG_LABEL = 2
MSG_LOOKUP = 3
MSG_FORWARD = 4
MSG_SHUTDOWN = 5
REPLY_OK = 32
REPLY_ERROR = 33

_MSG_NAMES = {
    MSG_STATUS: "STATUS",
    MSG_LABEL: "LABEL",
    MSG_LOOKUP: "LOOKUP",
    MSG_FORWARD: "FORWARD",
    MSG_SHUTDOWN: "SHUTDOWN",
    REPLY_OK: "OK",
    REPLY_ERROR: "ERROR",
}


def msg_name(msg: int) -> str:
    """Human name of a message type byte (diagnostics only)."""
    return _MSG_NAMES.get(msg, f"msg 0x{msg:02x}")


class ClusterError(ServingError):
    """Base of cluster-serving failures (a :class:`ServingError`, so
    degraded-mode callers keyed on the serving hierarchy keep working
    across the RPC boundary)."""


class WireProtocolError(ClusterError):
    """A frame violates the protocol: bad magic, unknown version, a
    lying length, or a mid-frame disconnect."""


class NotOwnerError(ClusterError):
    """A worker was asked about a vertex outside its assignment — a
    routing/placement bug, never a data fault (failover will not
    help)."""


class WorkerUnavailableError(ClusterError, ConnectionError):
    """A worker cannot be reached: connection refused, reset, or closed.
    The client-side failover trigger, exactly as
    :class:`~repro.routing.serving.ShardUnavailableError` is for a
    replica file."""


#: exception types allowed to cross the wire by name — everything the
#: serving stack can legitimately raise at the RPC boundary
_WIRE_ERRORS: Dict[str, Type[Exception]] = {
    cls.__name__: cls
    for cls in (
        ServingError,
        ShardUnavailableError,
        ShardIntegrityError,
        WireContractError,
        ShardAccountingError,
        ReplicaExhaustedError,
        ShardCodecError,
        ChecksumError,
        ClusterError,
        WireProtocolError,
        NotOwnerError,
    )
}


def error_payload(exc: BaseException) -> bytes:
    """Encode ``exc`` for a ``REPLY_ERROR`` frame: (type name, message)."""
    return encode_value((type(exc).__name__, str(exc)))


def raise_remote(
    name: str, message: str, *, worker: Optional[int] = None
) -> "None":
    """Re-raise a remote error client-side as its typed class.

    ``worker`` (when known) is prefixed into the message so an operator
    reading a traceback knows *which* process failed.  An unrecognised
    type name degrades to :class:`ClusterError` — still typed, still a
    :class:`ServingError` — rather than losing the failure.
    """
    prefix = f"[worker {worker}] " if worker is not None else ""
    cls = _WIRE_ERRORS.get(name)
    if cls is None:
        raise ClusterError(f"{prefix}{name}: {message}")
    if cls is ReplicaExhaustedError:
        # its constructor requires the per-replica causes map, which
        # does not cross the wire (exceptions are not values) — the
        # textual message carries what the worker knew
        raise ReplicaExhaustedError(prefix + message, {})
    raise cls(prefix + message)


def send_frame(sock: socket.socket, msg: int, payload: bytes) -> int:
    """Send one frame; returns the total bytes written.

    A connection-level failure (peer gone, pipe broken) surfaces as
    :class:`WorkerUnavailableError` — the typed signal the router's
    failover is keyed on.
    """
    if len(payload) > MAX_PAYLOAD:
        raise WireProtocolError(
            f"{msg_name(msg)} payload of {len(payload)} bytes exceeds "
            f"the {MAX_PAYLOAD}-byte frame limit"
        )
    frame = _FRAME.pack(WIRE_MAGIC, WIRE_VERSION, msg, len(payload))
    try:
        sock.sendall(frame + payload)
    except OSError as exc:
        raise WorkerUnavailableError(
            f"connection lost sending {msg_name(msg)}: {exc}"
        ) from exc
    return len(frame) + len(payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes, ``None`` on clean EOF at byte 0.

    EOF *mid-read* is a torn frame (:class:`WireProtocolError`) — the
    peer died between header and payload, and whatever arrived cannot
    be trusted.
    """
    chunks = []
    got = 0
    while got < count:
        try:
            chunk = sock.recv(count - got)
        except OSError as exc:
            raise WorkerUnavailableError(
                f"connection lost receiving: {exc}"
            ) from exc
        if not chunk:
            if got == 0:
                return None
            raise WireProtocolError(
                f"connection closed mid-frame ({got}/{count} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Tuple[int, bytes]]:
    """Receive one frame: ``(msg type, payload)``, or ``None`` on a
    clean close at a frame boundary (how a peer ends the session)."""
    header = _recv_exact(sock, FRAME_BYTES)
    if header is None:
        return None
    magic, version, msg, length = _FRAME.unpack(header)
    if magic != WIRE_MAGIC:
        raise WireProtocolError(
            f"bad frame magic {magic!r} (want {WIRE_MAGIC!r}) — not a "
            f"cluster wire peer"
        )
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    if length > MAX_PAYLOAD:
        raise WireProtocolError(
            f"{msg_name(msg)} frame declares {length} payload bytes, "
            f"over the {MAX_PAYLOAD}-byte limit — refusing to allocate"
        )
    payload = b"" if length == 0 else _recv_exact(sock, length)
    if payload is None:
        raise WireProtocolError(
            f"connection closed before the {length}-byte "
            f"{msg_name(msg)} payload"
        )
    return msg, payload


def send_value(sock: socket.socket, msg: int, value: Any) -> int:
    """``send_frame`` of a value-codec payload; returns bytes written."""
    return send_frame(sock, msg, encode_value(value))


def decode_error(payload: bytes) -> Tuple[str, str]:
    """Validate and unpack a ``REPLY_ERROR`` payload."""
    value = decode_value(payload)
    if not (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[0], str)
        and isinstance(value[1], str)
    ):
        raise WireProtocolError(
            f"malformed error payload {value!r} (want (type, message))"
        )
    return value
